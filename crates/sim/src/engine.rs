//! The legacy boxed-closure event queue and dispatch loop.
//!
//! This is the original engine: one heap-allocated `Box<dyn FnOnce>` per
//! event in a single global `BinaryHeap`. Production worlds have migrated
//! to the typed, arena-backed [`crate::EventEngine`]; this module is kept
//! as the simplest-possible reference implementation and as the baseline
//! the `benches/engine.rs` micro-benchmark measures the typed engine
//! against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: a one-shot closure over the world and the engine.
type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first. Ties on time break by insertion order, which makes the
        // execution order deterministic.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation engine.
///
/// `W` is the caller-owned *world*: all mutable simulation state. Events are
/// closures invoked with `(&mut W, &mut Engine<W>)` so they can both mutate
/// state and schedule follow-up events. Events at equal timestamps run in
/// the order they were scheduled.
///
/// # Example
///
/// ```
/// use sonuma_sim::{Engine, SimTime};
///
/// let mut engine = Engine::new();
/// let mut log: Vec<u32> = Vec::new();
/// engine.schedule_at(SimTime::from_ns(5), |w: &mut Vec<u32>, e: &mut Engine<Vec<u32>>| {
///     w.push(1);
///     e.schedule_in(SimTime::from_ns(5), |w: &mut Vec<u32>, _| w.push(2));
/// });
/// engine.run(&mut log);
/// assert_eq!(log, vec![1, 2]);
/// assert_eq!(engine.now(), SimTime::from_ns(10));
/// ```
pub struct Engine<W> {
    queue: BinaryHeap<Scheduled<W>>,
    now: SimTime,
    next_seq: u64,
    executed: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            executed: 0,
        }
    }

    /// The current simulated time (the timestamp of the event being, or last,
    /// executed).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the simulation
    /// cannot travel backwards.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Runs events with timestamps `<= horizon`; later events stay queued.
    ///
    /// Returns the number of events executed by this call. After returning,
    /// [`Engine::now`] is the timestamp of the last executed event (or
    /// unchanged if none ran); it never jumps to `horizon`.
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) -> u64 {
        let mut ran = 0;
        while let Some(head) = self.queue.peek() {
            if head.time > horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.executed += 1;
            ran += 1;
            (ev.f)(world, self);
        }
        ran
    }

    /// Runs at most `max_events` events; used to bound runaway simulations.
    ///
    /// Returns the number of events executed.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut ran = 0;
        while ran < max_events {
            match self.queue.pop() {
                Some(ev) => {
                    self.now = ev.time;
                    self.executed += 1;
                    ran += 1;
                    (ev.f)(world, self);
                }
                None => break,
            }
        }
        ran
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        trace: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new();
        let mut w = World::default();
        e.schedule_at(
            SimTime::from_ns(30),
            |w: &mut World, e: &mut Engine<World>| w.trace.push((e.now().as_ps(), "c")),
        );
        e.schedule_at(
            SimTime::from_ns(10),
            |w: &mut World, e: &mut Engine<World>| w.trace.push((e.now().as_ps(), "a")),
        );
        e.schedule_at(
            SimTime::from_ns(20),
            |w: &mut World, e: &mut Engine<World>| w.trace.push((e.now().as_ps(), "b")),
        );
        e.run(&mut w);
        assert_eq!(w.trace, vec![(10_000, "a"), (20_000, "b"), (30_000, "c")]);
        assert_eq!(e.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut e = Engine::new();
        let mut w = World::default();
        let t = SimTime::from_ns(5);
        e.schedule_at(t, |w: &mut World, _: &mut Engine<World>| {
            w.trace.push((0, "first"))
        });
        e.schedule_at(t, |w: &mut World, _: &mut Engine<World>| {
            w.trace.push((0, "second"))
        });
        e.run(&mut w);
        assert_eq!(w.trace, vec![(0, "first"), (0, "second")]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = Engine::new();
        let mut w = World::default();
        e.schedule_at(
            SimTime::from_ns(1),
            |w: &mut World, e: &mut Engine<World>| {
                w.trace.push((e.now().as_ps(), "outer"));
                e.schedule_in(
                    SimTime::from_ns(2),
                    |w: &mut World, e: &mut Engine<World>| {
                        w.trace.push((e.now().as_ps(), "inner"));
                    },
                );
            },
        );
        e.run(&mut w);
        assert_eq!(w.trace, vec![(1_000, "outer"), (3_000, "inner")]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut e = Engine::new();
        let mut w = World::default();
        e.schedule_at(
            SimTime::from_ns(10),
            |w: &mut World, _: &mut Engine<World>| w.trace.push((0, "early")),
        );
        e.schedule_at(
            SimTime::from_ns(100),
            |w: &mut World, _: &mut Engine<World>| w.trace.push((0, "late")),
        );
        let ran = e.run_until(&mut w, SimTime::from_ns(50));
        assert_eq!(ran, 1);
        assert_eq!(w.trace.len(), 1);
        assert_eq!(e.pending(), 1);
        // now() sticks at the last executed event, not the horizon.
        assert_eq!(e.now(), SimTime::from_ns(10));
        e.run(&mut w);
        assert_eq!(w.trace.len(), 2);
    }

    #[test]
    fn run_steps_bounds_execution() {
        let mut e = Engine::new();
        let mut w = World::default();
        for i in 0..10u64 {
            e.schedule_at(
                SimTime::from_ns(i),
                |w: &mut World, _: &mut Engine<World>| w.trace.push((0, "x")),
            );
        }
        assert_eq!(e.run_steps(&mut w, 4), 4);
        assert_eq!(w.trace.len(), 4);
        assert_eq!(e.run_steps(&mut w, 100), 6);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new();
        let mut w = World::default();
        e.schedule_at(
            SimTime::from_ns(10),
            |_: &mut World, e: &mut Engine<World>| {
                // now = 10ns; scheduling at 5ns must panic.
                e.schedule_at(SimTime::from_ns(5), |_, _| {});
            },
        );
        e.run(&mut w);
    }
}
