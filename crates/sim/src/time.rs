//! Simulated time as an integer count of picoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, stored as integer picoseconds.
///
/// Picosecond resolution lets core cycles (500 ps at 2 GHz), cache latencies,
/// DRAM timings and link serialization delays compose exactly. A `u64` of
/// picoseconds covers ~213 simulated days, far beyond any experiment here.
///
/// # Example
///
/// ```
/// use sonuma_sim::SimTime;
///
/// let cycle = SimTime::from_cycles(1, 2_000_000_000);
/// assert_eq!(cycle, SimTime::from_ps(500));
/// assert_eq!(SimTime::from_ns(60) + cycle, SimTime::from_ps(60_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero, the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from a whole number of clock cycles at `hz`.
    ///
    /// Rounds to the nearest picosecond; exact for the 2 GHz clock used
    /// throughout the soNUMA evaluation.
    #[inline]
    pub const fn from_cycles(cycles: u64, hz: u64) -> Self {
        // ps = cycles * 1e12 / hz, computed in u128 to avoid overflow.
        let ps = (cycles as u128 * 1_000_000_000_000u128) / hz as u128;
        SimTime(ps as u64)
    }

    /// Creates a time from a (possibly fractional) count of nanoseconds.
    ///
    /// Used by calibrated analytic models (e.g. the TCP baseline); rounds to
    /// the nearest picosecond.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds, as a float (for reporting).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time in microseconds, as a float (for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time in seconds, as a float (for bandwidth computations).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; `ZERO` if `other` is later than `self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Whether this is time zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0ns")
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_cycles(3, 2_000_000_000).as_ps(), 1_500);
        assert_eq!(SimTime::from_cycles(6, 2_000_000_000).as_ps(), 3_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!(a + b, SimTime::from_ns(140));
        assert_eq!(a - b, SimTime::from_ns(60));
        assert_eq!(a * 3, SimTime::from_ns(300));
        assert_eq!(a / 4, SimTime::from_ns(25));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn float_reporting() {
        let t = SimTime::from_ps(1_500);
        assert!((t.as_ns_f64() - 1.5).abs() < 1e-12);
        let t = SimTime::from_us(2);
        assert!((t.as_us_f64() - 2.0).abs() < 1e-12);
        assert!((SimTime::from_ms(1).as_secs_f64() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn from_ns_f64_rounds() {
        assert_eq!(SimTime::from_ns_f64(1.2344), SimTime::from_ps(1234));
        assert_eq!(SimTime::from_ns_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::ZERO.to_string(), "0ns");
        assert_eq!(SimTime::from_ns(300).to_string(), "300.000ns");
        assert_eq!(SimTime::from_us(2).to_string(), "2.000us");
        assert_eq!(SimTime::from_ms(5).to_string(), "5ms");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::MAX > SimTime::from_ms(1_000_000));
    }
}
