//! Deterministic discrete-event simulation engine for the soNUMA reproduction.
//!
//! The paper evaluates soNUMA on Flexus, a cycle-accurate full-system
//! simulator. This crate provides the substrate we use instead: a
//! deterministic discrete-event engine with picosecond-resolution time, so
//! that 2 GHz core cycles (500 ps), cache latencies, DRAM timings, and fabric
//! delays all compose exactly with no floating-point drift.
//!
//! # Design
//!
//! * [`SimTime`] is an integer count of picoseconds.
//! * [`Engine`] is generic over a *world* type `W` owned by the caller.
//!   Events are boxed `FnOnce(&mut W, &mut Engine<W>)` closures ordered by
//!   `(time, sequence-number)`, which makes runs bit-reproducible: two runs
//!   with the same seed schedule and execute identical event sequences.
//! * [`rng::DetRng`] wraps a seeded PRNG so every stochastic decision is
//!   reproducible, and [`stats`] provides the counters and histograms used
//!   by the measurement harnesses.
//!
//! # Example
//!
//! ```
//! use sonuma_sim::{Engine, SimTime};
//!
//! struct World { ticks: u32 }
//! let mut engine = Engine::new();
//! let mut world = World { ticks: 0 };
//! engine.schedule_at(SimTime::from_ns(10), |w: &mut World, _e: &mut Engine<World>| {
//!     w.ticks += 1;
//! });
//! engine.run(&mut world);
//! assert_eq!(world.ticks, 1);
//! assert_eq!(engine.now(), SimTime::from_ns(10));
//! ```

pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use rng::DetRng;
pub use time::SimTime;
