//! Deterministic discrete-event simulation engine for the soNUMA reproduction.
//!
//! The paper evaluates soNUMA on Flexus, a cycle-accurate full-system
//! simulator. This crate provides the substrate we use instead: a
//! deterministic discrete-event engine with picosecond-resolution time, so
//! that 2 GHz core cycles (500 ps), cache latencies, DRAM timings, and fabric
//! delays all compose exactly with no floating-point drift.
//!
//! # Design
//!
//! * [`SimTime`] is an integer count of picoseconds.
//! * [`EventEngine`] is the production engine: the caller's *world*
//!   implements [`World`] by declaring a typed event `enum` and a
//!   `handle` method; events are stored by value in a slab arena and
//!   ordered by a calendar queue, so the scheduling hot path is
//!   allocation-free. Events are executed in `(time, sequence-number)`
//!   order, which makes runs bit-reproducible: two runs with the same
//!   seed schedule and execute identical event sequences.
//! * [`Engine`] is the legacy boxed-closure engine (one `Box<dyn FnOnce>`
//!   heap allocation per event). It is kept as the reference
//!   implementation and as the comparison baseline for the
//!   `benches/engine.rs` micro-benchmark; new worlds should implement
//!   [`World`] instead.
//! * [`ShardedEngine`] runs many [`EpochWorld`] shards — each its own
//!   world plus engine — in lookahead-bounded conservative epochs on a
//!   pool of worker threads, with partition-invariant epoch boundaries
//!   so sharded runs stay bit-deterministic (see [`sharded`]).
//! * [`rng::DetRng`] wraps a seeded PRNG so every stochastic decision is
//!   reproducible, and [`stats`] provides the counters and histograms used
//!   by the measurement harnesses.
//!
//! # Example
//!
//! ```
//! use sonuma_sim::{EventEngine, SimTime, World};
//!
//! struct Counter { ticks: u32 }
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _engine: &mut EventEngine<Self>, event: Ev) {
//!         let Ev::Tick = event;
//!         self.ticks += 1;
//!     }
//! }
//!
//! let mut engine = EventEngine::new();
//! let mut world = Counter { ticks: 0 };
//! engine.schedule_at(SimTime::from_ns(10), Ev::Tick);
//! engine.run(&mut world);
//! assert_eq!(world.ticks, 1);
//! assert_eq!(engine.now(), SimTime::from_ns(10));
//! ```

pub mod engine;
pub mod event;
pub mod rng;
pub mod sharded;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use event::{EventEngine, World};
pub use rng::DetRng;
pub use sharded::{EpochWorld, LookaheadMatrix, ShardedEngine};
pub use time::SimTime;
