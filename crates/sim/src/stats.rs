//! Measurement utilities: counters, online means, and latency histograms.

use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sonuma_sim::stats::Counter;
///
/// let mut reads = Counter::new("remote_reads");
/// reads.add(3);
/// reads.incr();
/// assert_eq!(reads.value(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Numerically stable online mean/min/max (Welford's algorithm).
///
/// # Example
///
/// ```
/// use sonuma_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A log-scaled latency histogram with exact recording of simulated times.
///
/// Buckets are HDR-style: each power-of-two octave in picoseconds splits
/// into [`LatencyHistogram::SUBBUCKETS`] linear sub-buckets, bounding the
/// quantization error of any reported percentile to 12.5 % — fine enough
/// to rank SLO classes and value-size latency rows whose true tails
/// differ by well under the 2× a plain log2 histogram can resolve.
///
/// # Example
///
/// ```
/// use sonuma_sim::stats::LatencyHistogram;
/// use sonuma_sim::SimTime;
///
/// let mut h = LatencyHistogram::new();
/// h.record(SimTime::from_ns(300));
/// h.record(SimTime::from_ns(310));
/// assert_eq!(h.count(), 2);
/// assert!(h.percentile(0.5) >= SimTime::from_ns(256));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    // bucket `idx` counts samples whose picosecond value keeps the same
    // leading bit and top SUB_BITS mantissa bits (see `bucket_of`).
    buckets: Vec<u64>,
    count: u64,
    sum_ps: u128,
    min: SimTime,
    max: SimTime,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// log2 of [`LatencyHistogram::SUBBUCKETS`].
    const SUB_BITS: u32 = 3;
    /// Linear sub-buckets per power-of-two octave.
    pub const SUBBUCKETS: u64 = 1 << Self::SUB_BITS;
    /// Total bucket count: values below `SUBBUCKETS * 2` index linearly
    /// (buckets 0..16), and each of the remaining 60 octaves of a u64
    /// contributes `SUBBUCKETS` more.
    const BUCKETS: usize = ((64 - Self::SUB_BITS as usize - 1) + 2) << Self::SUB_BITS as usize;

    /// The bucket index of a picosecond value: linear below two octaves'
    /// worth, then `(octave, top 3 mantissa bits)` — the indexing is
    /// continuous across the boundary.
    fn bucket_of(ps: u64) -> usize {
        if ps < 2 * Self::SUBBUCKETS {
            return ps as usize;
        }
        let msb = 63 - ps.leading_zeros() as usize;
        let sub = (ps >> (msb - Self::SUB_BITS as usize)) & (Self::SUBBUCKETS - 1);
        ((msb - Self::SUB_BITS as usize + 1) << Self::SUB_BITS as usize) + sub as usize
    }

    /// The smallest picosecond value mapping to bucket `idx` (the inverse
    /// of [`LatencyHistogram::bucket_of`], used for percentile reporting).
    fn bucket_floor(idx: usize) -> u64 {
        if idx < 2 * Self::SUBBUCKETS as usize {
            return idx as u64;
        }
        let octave = idx >> Self::SUB_BITS as usize;
        let sub = (idx & (Self::SUBBUCKETS as usize - 1)) as u64;
        (Self::SUBBUCKETS + sub) << (octave - 1)
    }

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum_ps: 0,
            min: SimTime::MAX,
            max: SimTime::ZERO,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, t: SimTime) {
        let ps = t.as_ps();
        self.buckets[Self::bucket_of(ps)] += 1;
        self.count += 1;
        self.sum_ps += ps as u128;
        self.min = self.min.min(t);
        self.max = self.max.max(t);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero if empty).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ps((self.sum_ps / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample (zero if empty).
    pub fn min(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// Approximate percentile (`q` in `[0, 1]`): lower bound of the bucket
    /// containing the q-quantile sample.
    pub fn percentile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimTime::from_ps(Self::bucket_floor(i));
            }
        }
        self.max
    }

    /// Resets all samples (e.g. after warm-up).
    pub fn reset(&mut self) {
        *self = LatencyHistogram::new();
    }

    /// Folds `other`'s samples into `self` (bucket-wise: exact for every
    /// statistic this histogram reports). Used to aggregate per-tenant
    /// histograms into per-class distributions.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Converts a byte count moved over a duration into Gbps (decimal giga).
///
/// Returns 0 for a zero duration.
///
/// # Example
///
/// ```
/// use sonuma_sim::stats::gbps;
/// use sonuma_sim::SimTime;
///
/// // 1250 bytes in 1 us = 10 Gbps.
/// assert!((gbps(1250, SimTime::from_us(1)) - 10.0).abs() < 1e-9);
/// ```
pub fn gbps(bytes: u64, elapsed: SimTime) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / secs / 1e9
}

/// Converts a byte count moved over a duration into GB/s (decimal giga).
pub fn gbytes_per_sec(bytes: u64, elapsed: SimTime) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 / secs / 1e9
}

/// Operations per second over a duration (e.g. IOPS).
pub fn ops_per_sec(ops: u64, elapsed: SimTime) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    ops as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.to_string(), "x=0");
    }

    #[test]
    fn online_stats_match_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_ns(100));
        h.record(SimTime::from_ns(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), SimTime::from_ns(200));
        assert_eq!(h.min(), SimTime::from_ns(100));
        assert_eq!(h.max(), SimTime::from_ns(300));
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_ns(i));
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        assert!(h.percentile(0.0) >= SimTime::from_ps(1));
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimTime::ZERO);
    }

    #[test]
    fn histogram_merge_matches_joint_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut joint = LatencyHistogram::new();
        for i in 1..=100u64 {
            let t = SimTime::from_ns(i * 13 % 997);
            if i % 2 == 0 {
                a.record(t)
            } else {
                b.record(t)
            }
            joint.record(t);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), joint.count());
        assert_eq!(a.mean(), joint.mean());
        assert_eq!(a.min(), joint.min());
        assert_eq!(a.max(), joint.max());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.percentile(q), joint.percentile(q));
        }
    }

    #[test]
    fn histogram_buckets_are_continuous_and_invert() {
        // Every bucket's floor maps back to that bucket, floors strictly
        // increase, and adjacent sample values never skip a bucket.
        let mut prev_floor = None;
        for idx in 0..LatencyHistogram::BUCKETS {
            let floor = LatencyHistogram::bucket_floor(idx);
            assert_eq!(LatencyHistogram::bucket_of(floor), idx, "idx {idx}");
            if let Some(p) = prev_floor {
                assert!(floor > p, "floors not increasing at {idx}");
            }
            prev_floor = Some(floor);
        }
        assert_eq!(
            LatencyHistogram::bucket_of(u64::MAX),
            LatencyHistogram::BUCKETS - 1
        );
    }

    #[test]
    fn histogram_resolves_sub_octave_differences() {
        // Two clusters 1.5x apart within the same power of two land in
        // different buckets — the SLO-separation gates depend on this.
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(SimTime::from_ns(100_000));
        }
        let p_fast = h.percentile(0.99);
        for _ in 0..100 {
            h.record(SimTime::from_ns(150_000));
        }
        let p_mixed = h.percentile(0.99);
        assert!(p_fast < p_mixed, "{p_fast:?} vs {p_mixed:?}");
        // And the reported bound is within 12.5% below the true value.
        assert!(p_mixed.as_ps() > 150_000_000_000 / 1000 / 8 * 7);
        assert!(p_mixed <= SimTime::from_ns(150_000));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.percentile(0.5), SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
    }

    #[test]
    fn rate_helpers() {
        assert!((gbps(1250, SimTime::from_us(1)) - 10.0).abs() < 1e-9);
        assert!((gbytes_per_sec(9_600, SimTime::from_us(1)) - 9.6).abs() < 1e-9);
        assert!((ops_per_sec(10, SimTime::from_us(1)) - 1e7).abs() < 1e-3);
        assert_eq!(gbps(100, SimTime::ZERO), 0.0);
        assert_eq!(ops_per_sec(100, SimTime::ZERO), 0.0);
    }
}
