//! The typed, arena-backed event engine.
//!
//! [`EventEngine`] is the allocation-free successor of the boxed-closure
//! [`crate::Engine`]: instead of heap-allocating a `Box<dyn FnOnce>` per
//! event, the world declares a plain `enum` of everything that can happen
//! ([`World::Event`]) and dispatches it in [`World::handle`]. Events are
//! stored *by value* in a slab arena (a `Vec` plus a free list, so slots
//! recycle and the steady-state hot path never touches the allocator) and
//! ordered by a calendar queue:
//!
//! * time is divided into fixed-width *days* (a power-of-two number of
//!   picoseconds); day `d` hashes to bucket `d mod nbuckets`;
//! * each bucket keeps its 16-byte `(time, seq·slot)` keys sorted
//!   descending, so the bucket minimum pops from the tail in O(1);
//! * extracting the global minimum scans forward day by day from the last
//!   pop — amortized O(1) when occupancy is near one event per day — and
//!   falls back to a direct min scan after one empty round trip;
//! * the queue resizes (and re-estimates the day width from the observed
//!   event spread) when occupancy drifts, keeping both insert and pop
//!   cheap across workloads from hundreds to millions of pending events.
//!
//! Ordering is exact, not approximate: pops come out in `(time, seq)`
//! order, where `seq` is the schedule order, so runs are bit-reproducible
//! exactly like the closure engine's.
//!
//! # Example
//!
//! ```
//! use sonuma_sim::{EventEngine, SimTime, World};
//!
//! struct Clock { ticks: u32 }
//! enum Ev { Tick, Stop }
//!
//! impl World for Clock {
//!     type Event = Ev;
//!     fn handle(&mut self, engine: &mut EventEngine<Self>, event: Ev) {
//!         match event {
//!             Ev::Tick => {
//!                 self.ticks += 1;
//!                 engine.schedule_in(SimTime::from_ns(10), Ev::Tick);
//!             }
//!             Ev::Stop => engine.clear(),
//!         }
//!     }
//! }
//!
//! let mut engine = EventEngine::new();
//! let mut clock = Clock { ticks: 0 };
//! engine.schedule_at(SimTime::ZERO, Ev::Tick);
//! engine.schedule_at(SimTime::from_ns(35), Ev::Stop);
//! engine.run(&mut clock);
//! assert_eq!(clock.ticks, 4); // t = 0, 10, 20, 30
//! ```

use crate::time::SimTime;

/// A simulation world driven by an [`EventEngine`].
///
/// `Event` is the closed set of things that can happen to this world —
/// typically a plain `enum` carrying only ids and small payloads, so that
/// scheduling never allocates. [`World::handle`] receives the engine
/// mutably and may schedule follow-up events.
pub trait World: Sized {
    /// The typed event this world responds to.
    type Event;

    /// Applies one event at the engine's current time.
    fn handle(&mut self, engine: &mut EventEngine<Self>, event: Self::Event);
}

/// Queue key: `(time in ps, meta)` where `meta` packs the schedule
/// sequence (high 40 bits) above the arena slot (low 24 bits). Sequence
/// occupies the high bits, so ordering by `(time, meta)` equals ordering
/// by `(time, seq)` — and the whole key is 16 bytes, four to a cache
/// line.
type Key = (u64, u64);

/// Bits of the key's meta word reserved for the arena slot.
const SLOT_BITS: u32 = 24;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// Initial/minimum bucket count (power of two).
const MIN_BUCKETS: usize = 16;

/// Initial day width: 2^10 ps ≈ 1 ns, one core-cycle-ish.
const INITIAL_SHIFT: u32 = 10;

/// Day-width bounds at re-estimation: 64 ps .. ~17.6 µs.
const MIN_SHIFT: u32 = 6;
const MAX_SHIFT: u32 = 44;

/// A calendar queue over [`Key`]s (Brown's multi-list priority queue).
#[derive(Debug)]
struct CalendarQueue {
    /// Each bucket is sorted descending by `(time, seq)`: its minimum is
    /// the tail, poppable in O(1).
    buckets: Vec<Vec<Key>>,
    /// Day width is `1 << shift` picoseconds.
    shift: u32,
    /// Bucket the day scan is currently parked on.
    cur: usize,
    /// Exclusive upper time bound of the day under scan, in ps. `u128`
    /// so the scan can never overflow near `SimTime::MAX`.
    day_end: u128,
    /// Total keys stored.
    len: usize,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            cur: 0,
            day_end: 1u128 << INITIAL_SHIFT,
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t >> self.shift) as usize) & (self.buckets.len() - 1)
    }

    /// Inserts without occupancy checks (shared by `insert` and `rebuild`).
    fn push_key(&mut self, key: Key) {
        let idx = self.bucket_of(key.0);
        let bucket = &mut self.buckets[idx];
        let pos = bucket.partition_point(|&k| k > key);
        bucket.insert(pos, key);
        self.len += 1;
        // If the key lands in a day the scan has already passed, rewind the
        // cursor so it is found before anything later.
        let width = 1u128 << self.shift;
        if (key.0 as u128) < self.day_end - width {
            self.cur = idx;
            self.day_end = (((key.0 >> self.shift) as u128) + 1) << self.shift;
        }
    }

    fn insert(&mut self, key: Key) {
        self.push_key(key);
        if self.len > self.buckets.len() * 8 {
            self.rebuild(self.buckets.len() * 4);
        }
    }

    /// Positions the day cursor on the bucket whose tail is the global
    /// minimum and returns that bucket's index.
    fn locate_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let width = 1u128 << self.shift;
        // Scan forward a bounded number of days; a long fruitless scan
        // means the queue went sparse relative to the day width, and one
        // direct min sweep is cheaper than walking empty days.
        let scan_limit = self.buckets.len().min(64);
        for _ in 0..scan_limit {
            if let Some(&(t, _)) = self.buckets[self.cur].last() {
                if (t as u128) < self.day_end {
                    return Some(self.cur);
                }
            }
            self.cur = (self.cur + 1) & (self.buckets.len() - 1);
            self.day_end += width;
        }
        // Jump straight to the minimum. (Same-time keys share a bucket, so
        // comparing tails by (time, seq) identifies the unique minimum.)
        let (idx, t) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.last().map(|&(t, m)| (i, t, m)))
            .min_by_key(|&(_, t, s)| (t, s))
            .map(|(i, t, _)| (i, t))
            .expect("len > 0 but no bucket tail");
        self.cur = idx;
        self.day_end = (((t >> self.shift) as u128) + 1) << self.shift;
        Some(idx)
    }

    /// Pops the earliest key if its time is `<= horizon`.
    fn pop_min_through(&mut self, horizon: u64) -> Option<Key> {
        let idx = self.locate_min()?;
        let &(t, _) = self.buckets[idx].last().expect("located bucket tail");
        if t > horizon {
            return None;
        }
        let key = self.buckets[idx].pop().expect("located bucket tail");
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len * 32 < self.buckets.len() {
            self.rebuild((self.buckets.len() / 4).max(MIN_BUCKETS));
        }
        Some(key)
    }

    /// Re-buckets every key into `nbuckets` buckets, re-estimating the day
    /// width from the observed spread so occupancy stays near a few keys
    /// per bucket-day. Inner bucket `Vec`s are reused across rebuilds so
    /// repeated grows/shrinks do not churn the allocator.
    fn rebuild(&mut self, nbuckets: usize) {
        let nbuckets = nbuckets.next_power_of_two().max(MIN_BUCKETS);
        let mut keys: Vec<Key> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            keys.append(b);
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &(t, _) in &keys {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        if !keys.is_empty() {
            let spacing = ((hi - lo) / keys.len() as u64).max(1);
            self.shift = (63 - spacing.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
        }
        // Emptied inner vecs keep their capacity: truncate on shrink,
        // extend with fresh (lazily allocated) vecs on grow.
        if nbuckets < self.buckets.len() {
            self.buckets.truncate(nbuckets);
        } else {
            self.buckets.resize_with(nbuckets, Vec::new);
        }
        self.len = 0;
        // Park the cursor on the earliest key's day (or day zero if empty);
        // push_key's rewind keeps it correct as keys go back in.
        if lo == u64::MAX {
            self.cur = 0;
            self.day_end = 1u128 << self.shift;
        } else {
            self.cur = self.bucket_of(lo);
            self.day_end = (((lo >> self.shift) as u128) + 1) << self.shift;
        }
        for key in keys {
            self.push_key(key);
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.cur = 0;
        self.day_end = 1u128 << self.shift;
    }
}

/// A deterministic discrete-event engine dispatching typed events.
///
/// `W` is the caller-owned world implementing [`World`]. Events are stored
/// by value in an internal arena; the scheduling hot path performs no heap
/// allocation once the arena and queue have warmed up. Events at equal
/// timestamps run in the order they were scheduled, making runs
/// bit-reproducible.
///
/// The driving API (`schedule_at`/`schedule_in`/`run`/`run_until`/
/// `run_steps`/`now`/`events_executed`/`pending`) matches the legacy
/// boxed-closure [`crate::Engine`] so worlds migrate by swapping closures
/// for event variants.
pub struct EventEngine<W: World> {
    arena: Vec<Option<W::Event>>,
    free: Vec<u32>,
    queue: CalendarQueue,
    now: SimTime,
    next_seq: u64,
    executed: u64,
}

impl<W: World> Default for EventEngine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: World> EventEngine<W> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        EventEngine {
            arena: Vec::new(),
            free: Vec::new(),
            queue: CalendarQueue::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            executed: 0,
        }
    }

    /// The current simulated time (the timestamp of the event being, or
    /// last, executed).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the simulation
    /// cannot travel backwards.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        assert!(
            seq < 1 << (64 - SLOT_BITS),
            "schedule sequence space exhausted"
        );
        let slot = match self.free.pop() {
            Some(slot) => {
                self.arena[slot as usize] = Some(event);
                slot
            }
            None => {
                assert!(
                    (self.arena.len() as u64) < SLOT_MASK,
                    "event arena full ({} pending events)",
                    self.arena.len()
                );
                self.arena.push(Some(event));
                (self.arena.len() - 1) as u32
            }
        };
        self.queue
            .insert((at.as_ps(), (seq << SLOT_BITS) | slot as u64));
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: W::Event) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the earliest pending event, without popping it.
    ///
    /// Takes `&mut self` because locating the minimum advances the
    /// calendar queue's day cursor (the queue itself is untouched).
    pub fn next_time(&mut self) -> Option<SimTime> {
        let idx = self.queue.locate_min()?;
        self.queue.buckets[idx]
            .last()
            .map(|&(t, _)| SimTime::from_ps(t))
    }

    /// Moves the clock forward to `to` without executing anything — the
    /// epoch-boundary alignment of the sharded engine, and the idle-clock
    /// jump of open-loop drivers. A no-op if the clock is already at or
    /// past `to`.
    ///
    /// Callers must not advance past a pending event: that event would
    /// later execute "in the past". Debug builds assert this.
    pub fn advance_now_to(&mut self, to: SimTime) {
        debug_assert!(
            self.next_time().is_none_or(|next| next >= to),
            "advance_now_to({to}) would skip a pending event"
        );
        if to > self.now {
            self.now = to;
        }
    }

    /// Moves the clock *backward* to `to` without touching the queue —
    /// the inverse of [`EventEngine::advance_now_to`], used to undo a
    /// refuted clock-only speculation (`sonuma-sim`'s sharded engine).
    /// Only sound when no event has executed since the clock last stood
    /// at `to`: the caller checkpoints `events_executed` alongside the
    /// clock and asserts it unchanged before rewinding.
    pub fn rewind_now_to(&mut self, to: SimTime) {
        debug_assert!(
            to <= self.now,
            "rewind_now_to({to}) would move the clock forward"
        );
        self.now = to;
    }

    /// Drops every pending event (terminate a simulation early).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.arena.clear();
        self.free.clear();
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Runs events with timestamps `<= horizon`; later events stay queued.
    ///
    /// Returns the number of events executed by this call. After returning,
    /// [`EventEngine::now`] is the timestamp of the last executed event (or
    /// unchanged if none ran); it never jumps to `horizon`.
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) -> u64 {
        let mut ran = 0;
        while let Some(event) = self.pop_through(horizon) {
            ran += 1;
            world.handle(self, event);
        }
        ran
    }

    /// Runs at most `max_events` events; used to bound runaway simulations.
    ///
    /// Returns the number of events executed.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut ran = 0;
        while ran < max_events {
            match self.pop_through(SimTime::MAX) {
                Some(event) => {
                    ran += 1;
                    world.handle(self, event);
                }
                None => break,
            }
        }
        ran
    }

    /// Pops the earliest event not after `horizon`, advancing the clock.
    fn pop_through(&mut self, horizon: SimTime) -> Option<W::Event> {
        let (t, meta) = self.queue.pop_min_through(horizon.as_ps())?;
        let slot = (meta & SLOT_MASK) as u32;
        debug_assert!(t >= self.now.as_ps(), "event queue went backwards");
        self.now = SimTime::from_ps(t);
        self.executed += 1;
        let event = self.arena[slot as usize]
            .take()
            .expect("queued slot holds an event");
        self.free.push(slot);
        Some(event)
    }
}

impl<W: World> std::fmt::Debug for EventEngine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventEngine")
            .field("now", &self.now)
            .field("pending", &self.queue.len)
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct TraceWorld {
        trace: Vec<(u64, u32)>,
    }

    #[derive(Debug, Clone, Copy)]
    enum TraceEvent {
        Mark(u32),
        Chain { id: u32, delay_ns: u64 },
        Past,
    }

    impl World for TraceWorld {
        type Event = TraceEvent;
        fn handle(&mut self, engine: &mut EventEngine<Self>, event: TraceEvent) {
            match event {
                TraceEvent::Mark(id) => self.trace.push((engine.now().as_ps(), id)),
                TraceEvent::Chain { id, delay_ns } => {
                    self.trace.push((engine.now().as_ps(), id));
                    engine.schedule_in(SimTime::from_ns(delay_ns), TraceEvent::Mark(id + 1));
                }
                TraceEvent::Past => {
                    engine.schedule_at(SimTime::ZERO, TraceEvent::Mark(0));
                }
            }
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        e.schedule_at(SimTime::from_ns(30), TraceEvent::Mark(3));
        e.schedule_at(SimTime::from_ns(10), TraceEvent::Mark(1));
        e.schedule_at(SimTime::from_ns(20), TraceEvent::Mark(2));
        e.run(&mut w);
        assert_eq!(w.trace, vec![(10_000, 1), (20_000, 2), (30_000, 3)]);
        assert_eq!(e.events_executed(), 3);
        assert_eq!(e.now(), SimTime::from_ns(30));
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        let t = SimTime::from_ns(5);
        for id in 0..100 {
            e.schedule_at(t, TraceEvent::Mark(id));
        }
        e.run(&mut w);
        let ids: Vec<u32> = w.trace.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        e.schedule_at(
            SimTime::from_ns(1),
            TraceEvent::Chain { id: 7, delay_ns: 2 },
        );
        e.run(&mut w);
        assert_eq!(w.trace, vec![(1_000, 7), (3_000, 8)]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        e.schedule_at(SimTime::from_ns(10), TraceEvent::Mark(1));
        e.schedule_at(SimTime::from_ns(100), TraceEvent::Mark(2));
        let ran = e.run_until(&mut w, SimTime::from_ns(50));
        assert_eq!(ran, 1);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.now(), SimTime::from_ns(10));
        e.run(&mut w);
        assert_eq!(w.trace.len(), 2);
    }

    #[test]
    fn run_steps_bounds_execution() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        for i in 0..10u64 {
            e.schedule_at(SimTime::from_ns(i), TraceEvent::Mark(i as u32));
        }
        assert_eq!(e.run_steps(&mut w, 4), 4);
        assert_eq!(w.trace.len(), 4);
        assert_eq!(e.run_steps(&mut w, 100), 6);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        e.schedule_at(SimTime::from_ns(10), TraceEvent::Past);
        e.run(&mut w);
    }

    #[test]
    fn clear_drops_pending_events() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        for i in 0..50u64 {
            e.schedule_at(SimTime::from_ns(i), TraceEvent::Mark(0));
        }
        e.clear();
        assert_eq!(e.pending(), 0);
        assert_eq!(e.run_until(&mut w, SimTime::MAX), 0);
        assert!(w.trace.is_empty());
    }

    #[test]
    fn arena_slots_recycle() {
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        // Repeated schedule/drain cycles must not grow the arena beyond the
        // peak number of simultaneously pending events.
        for round in 0..100u64 {
            for i in 0..8u64 {
                e.schedule_in(SimTime::from_ns(i + 1), TraceEvent::Mark(round as u32));
            }
            e.run(&mut w);
        }
        assert!(e.arena.len() <= 8, "arena grew to {}", e.arena.len());
        assert_eq!(e.events_executed(), 800);
    }

    #[test]
    fn far_future_gaps_are_skipped() {
        // Events separated by huge empty stretches exercise the direct
        // min-jump after a fruitless day round.
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        e.schedule_at(SimTime::from_ns(1), TraceEvent::Mark(1));
        e.schedule_at(SimTime::from_ms(10_000), TraceEvent::Mark(2));
        e.schedule_at(SimTime::from_ps(u64::MAX / 2), TraceEvent::Mark(3));
        e.run(&mut w);
        let ids: Vec<u32> = w.trace.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn resize_preserves_order_under_load() {
        // Pseudorandom times force grows, shrinks, and cursor rewinds; the
        // output order must still be exactly (time, seq).
        let mut e = EventEngine::new();
        let mut w = TraceWorld::default();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut expected: Vec<(u64, u32)> = Vec::new();
        for i in 0..10_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = x % 50_000_000; // 0..50 us in ps
            e.schedule_at(SimTime::from_ps(t), TraceEvent::Mark(i));
            expected.push((t, i));
        }
        e.run(&mut w);
        // Stable sort by time matches (time, seq) order because pushes
        // happen in seq order.
        expected.sort_by_key(|&(t, _)| t);
        assert_eq!(w.trace, expected);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn interleaved_schedule_and_pop_rewinds_cursor() {
        // A handler schedules near-now events after the cursor advanced far
        // ahead; they must still pop before later ones.
        struct Rewinder {
            order: Vec<u32>,
        }
        enum Ev {
            Seed,
            Mark(u32),
        }
        impl World for Rewinder {
            type Event = Ev;
            fn handle(&mut self, engine: &mut EventEngine<Self>, event: Ev) {
                match event {
                    Ev::Seed => {
                        // now is far from zero; schedule something only
                        // slightly in the future plus something far out.
                        engine.schedule_in(SimTime::from_ps(1), Ev::Mark(1));
                        engine.schedule_in(SimTime::from_ms(5), Ev::Mark(2));
                    }
                    Ev::Mark(id) => self.order.push(id),
                }
            }
        }
        let mut e = EventEngine::new();
        let mut w = Rewinder { order: Vec::new() };
        e.schedule_at(SimTime::from_ms(100), Ev::Seed);
        e.run(&mut w);
        assert_eq!(w.order, vec![1, 2]);
    }
}
