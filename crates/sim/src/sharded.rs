//! Conservative-parallel execution: shards advancing in lookahead-bounded
//! epochs.
//!
//! [`ShardedEngine`] runs `N` shard worlds — each an independent
//! discrete-event simulation over its own slice of state — in *epochs*
//! bounded by a [`LookaheadMatrix`]: `lookahead[s][d]` is the minimum
//! simulated time any action of shard `s` needs before it can affect
//! shard `d` (for the soNUMA fabric: the minimum hop distance between the
//! shards' node ranges times the per-hop latency, plus one serialization).
//! Each epoch, every shard `d` advances to
//!
//! ```text
//! horizon[d] = min over shards s of (floor[s] + lookahead[s][d]) - 1
//! ```
//!
//! where `floor[s]` is the earliest thing shard `s` could still do: its
//! earliest pending local event, or the earliest staged-but-undelivered
//! cross-shard message bound *into* it (the caller publishes the latter
//! via [`ShardedEngine::set_source_floor`]). Within an epoch every shard
//! executes its local events concurrently; cross-shard effects are staged
//! by the worlds and exchanged by the *caller* between epochs, and by
//! construction they can only land after the receiver's horizon — the
//! classic conservative (no-rollback) synchronization argument, sharpened
//! per shard pair. A [uniform matrix](LookaheadMatrix::uniform) reduces
//! exactly to the old scalar behavior: every horizon collapses to
//! `global min + lookahead - 1`.
//!
//! Determinism is the point: the epoch boundaries are a pure function of
//! event timestamps and the matrix, never of host thread scheduling, so a
//! run's event interleaving — and therefore its results — is bit-identical
//! for any shard count, provided the caller's exchange step merges staged
//! traffic in a partition-independent order (see `sonuma-machine`'s
//! `ShardedCluster` for the fabric merge that does this, and for how it
//! re-aligns shard clocks to partition-invariant quantum boundaries so
//! externally injected work charges invariant times).
//!
//! Shards execute on a pool of persistent worker threads. Between epochs a
//! worker spins briefly (epochs are microseconds of host time apart, so
//! futex latency would dominate a sleep), degrades to `yield_now`, and
//! finally parks with a timeout — so an idle, oversubscribed, or 1-core
//! host does not burn CPU while the coordinator is busy elsewhere. Spin
//! budgets adapt to [`std::thread::available_parallelism`]: when the run is
//! oversubscribed, spinning only steals cycles from the shard that would
//! release us, so the ladder collapses to almost-immediate yielding.
//! Shard 0 always runs on the coordinating thread, so a `threads = N` run
//! uses exactly `N` OS threads.
//!
//! # Speculative run-ahead
//!
//! With [`ShardedEngine::set_speculation`] set to `K > 0`, one release
//! of the workers executes up to `K` additional epoch *levels* without
//! re-synchronizing. After each level a shard publishes its new floor
//! (atomically, with release ordering); peers compute their next level's
//! horizon from whatever published floors they observe. This is safe
//! without any rollback because floors are monotone within a region: no
//! cross-shard traffic is applied between levels, so a shard's earliest
//! pending work — its next event, merged with the staged output it has
//! produced ([`EpochWorld::pending_floor`]) and the frozen staging floor —
//! can only move later. A stale floor is therefore always a *lower* bound,
//! and a horizon computed from stale floors is conservative.
//!
//! The genuinely optimistic part is clock-only: when a shard runs out of
//! provably safe horizon, it checkpoints its frontier
//! ([`EpochWorld::snapshot`]) and advances its clock to a *predicted*
//! horizon — betting that slower peers will publish the floors their
//! current level implies. At the barrier the coordinator re-derives every
//! horizon from the now-exact floors and validates each speculated clock
//! against it: within the certified bound the speculation commits (the
//! next region starts from the advanced clock); past it the shard is
//! rolled back ([`EpochWorld::restore`]). Because speculation never
//! *executes* an event — only the clock moves — rollback cannot leak
//! simulated state, and the executed event set and per-shard order are
//! identical to the conservative engine for every `K`. Only the
//! commit/rollback tallies ([`ShardedEngine::speculation`]) depend on
//! host timing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use crate::time::SimTime;

/// One shard of a sharded simulation: everything [`ShardedEngine`] needs
/// to drive it through epochs.
///
/// Implementations bundle a world and its event engine. `Send` is
/// required because shards execute on pool threads.
pub trait EpochWorld: Send + 'static {
    /// Executes every pending local event with `time <= horizon`; returns
    /// the number executed.
    fn run_epoch(&mut self, horizon: SimTime) -> u64;

    /// Timestamp of the earliest pending local event, if any.
    fn next_event_time(&mut self) -> Option<SimTime>;

    /// Aligns the shard's clock to the epoch boundary `to` (which is at
    /// or after every event executed so far, and before every pending
    /// one). A target at or before the current clock is a no-op — the
    /// engine passes stale targets when a shard's horizon regresses after
    /// an empty peer gains a floor.
    fn align_clock(&mut self, to: SimTime);

    /// The earliest pending work of the shard: its earliest pending local
    /// event, merged with the earliest staged-but-unapplied cross-shard
    /// output it has produced. During a speculative region the caller's
    /// exchange step does not run between levels, so output a level
    /// staged is work peers must still be fenced from — it joins the
    /// floor. The default covers worlds that stage nothing.
    fn pending_floor(&mut self) -> Option<SimTime> {
        self.next_event_time()
    }

    /// Checkpoints the shard's speculation-mutable frontier — at minimum
    /// its clock. The engine snapshots at most once per epoch, always
    /// after the shard's last event of that epoch has executed, and never
    /// executes an event past a live snapshot, so implementations only
    /// need to save what [`EpochWorld::align_clock`] moves.
    fn snapshot(&mut self);

    /// Rolls the frontier back to the last [`EpochWorld::snapshot`] —
    /// the engine calls this when barrier-time validation refutes a
    /// speculated clock. No events have executed since the snapshot, so
    /// restoring the clock restores the whole observable frontier.
    fn restore(&mut self);
}

/// Per-shard-pair conservative lookahead, in simulated time.
///
/// `get(s, d)` bounds from below how long any action of shard `s` takes to
/// affect shard `d` — including `s == d`, because in the sharded machine
/// even intra-shard packets take the staged mailbox path. Every entry must
/// be positive: a zero lookahead admits no epoch in which concurrency is
/// safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadMatrix {
    n: usize,
    ps: Vec<u64>,
}

impl LookaheadMatrix {
    /// A matrix with every entry equal to `lookahead` — the scalar
    /// conservative bound. [`ShardedEngine`] behaves exactly like the
    /// historical global-barrier engine under a uniform matrix.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `lookahead` is zero.
    pub fn uniform(shards: usize, lookahead: SimTime) -> Self {
        LookaheadMatrix::from_fn(shards, |_, _| lookahead)
    }

    /// Builds an `shards x shards` matrix from `f(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or any entry is zero.
    pub fn from_fn(shards: usize, mut f: impl FnMut(usize, usize) -> SimTime) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut ps = Vec::with_capacity(shards * shards);
        for s in 0..shards {
            for d in 0..shards {
                let l = f(s, d);
                assert!(
                    l > SimTime::ZERO,
                    "conservative execution requires a positive lookahead \
                     (entry [{s}][{d}] is zero)"
                );
                ps.push(l.as_ps());
            }
        }
        LookaheadMatrix { n: shards, ps }
    }

    /// Number of shards the matrix covers.
    pub fn shards(&self) -> usize {
        self.n
    }

    /// The `src -> dst` lookahead.
    pub fn get(&self, src: usize, dst: usize) -> SimTime {
        SimTime::from_ps(self.ps[src * self.n + dst])
    }

    #[inline]
    fn entry_ps(&self, src: usize, dst: usize) -> u64 {
        self.ps[src * self.n + dst]
    }

    /// Inclusive horizon shard `dst` may run to under `floors_ps`
    /// (`u64::MAX` = no floor): `min over s (floor[s] + la[s][dst]) - 1`,
    /// or `u64::MAX` when no shard has a floor. Shared by
    /// [`ShardedEngine::run_epoch`] and [`LookaheadMatrix::min_horizon`]
    /// so the two can never drift.
    fn horizon_ps(&self, dst: usize, floors_ps: &[u64]) -> u64 {
        let mut h = u64::MAX;
        for (s, &f) in floors_ps.iter().enumerate() {
            if f != u64::MAX {
                h = h.min(f.saturating_add(self.entry_ps(s, dst)).saturating_sub(1));
            }
        }
        h
    }

    /// The tightest horizon any shard would get in an epoch whose
    /// per-shard floors are `floors` — i.e. the commit frontier that
    /// epoch would establish (`ShardedEngine::min_horizon` after
    /// `run_epoch`). `None` when no shard has a floor.
    ///
    /// Horizons are pure floor arithmetic, so a caller that already knows
    /// every floor can advance its commit frontier — and turn staged
    /// traffic into delivery events — *before* running the epoch, instead
    /// of spending a whole (possibly empty) epoch just to publish the
    /// frontier.
    pub fn min_horizon(&self, floors: &[Option<SimTime>]) -> Option<SimTime> {
        assert_eq!(floors.len(), self.n, "one floor per shard");
        let ps: Vec<u64> = floors
            .iter()
            .map(|f| f.map_or(u64::MAX, SimTime::as_ps))
            .collect();
        let h = (0..self.n)
            .map(|d| self.horizon_ps(d, &ps))
            .min()
            .expect("nonempty matrix");
        (h != u64::MAX).then(|| SimTime::from_ps(h))
    }

    /// The tightest entry — the scalar lookahead the matrix sharpens.
    pub fn min(&self) -> SimTime {
        SimTime::from_ps(*self.ps.iter().min().expect("nonempty matrix"))
    }

    /// The loosest entry — how much run-ahead the most distant pair gets.
    pub fn max(&self) -> SimTime {
        SimTime::from_ps(*self.ps.iter().max().expect("nonempty matrix"))
    }
}

/// Spins briefly, then yields — the coordinator's wait for workers that
/// are actively executing an epoch (they finish in microseconds).
/// `spin_limit` comes from [`Control`]: large when every shard has a core
/// to run on, tiny when the run is oversubscribed and the spinner is
/// stealing cycles from the very shard it waits for.
#[inline]
fn relax(spins: &mut u32, spin_limit: u32) {
    *spins += 1;
    if *spins < spin_limit {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// OS threads the host can actually run in parallel (1 when unknown).
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Busy-wait spins when every shard has its own core.
const PROVISIONED_SPIN_LIMIT: u32 = 1 << 14;
/// Busy-wait spins when shards outnumber cores: long enough to catch a
/// release already in flight, short enough to hand the core over fast.
const OVERSUBSCRIBED_SPIN_LIMIT: u32 = 1 << 6;
/// Spins before an idle worker starts yielding (provisioned hosts).
const IDLE_SPIN_LIMIT: u32 = 1 << 12;
/// Yields before an idle worker parks.
const IDLE_YIELD_LIMIT: u32 = 64;
/// Park timeout: bounds the wake latency if an unpark is lost to the
/// publish race (the flag handshake below makes that rare), and bounds
/// idle wakeups to ~1 kHz while waiting for shutdown.
const IDLE_PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Shared coordination state between the coordinator and the workers.
struct Control<S> {
    /// Slot `i` holds shard `i`; workers own slots `1..`, the coordinator
    /// slot `0`. Locks are uncontended by construction: a worker holds
    /// its lock only while `epoch` says the shard is running, and the
    /// coordinator only touches worker slots between epochs.
    slots: Vec<Mutex<S>>,
    /// Monotone epoch sequence number; bumping it releases the workers.
    epoch: AtomicU64,
    /// Per-shard horizons of the epoch currently being executed, in ps.
    horizons_ps: Vec<AtomicU64>,
    /// Per-worker completion acknowledgements (last finished epoch).
    done: Vec<AtomicU64>,
    /// Events executed by each worker in its last epoch.
    ran: Vec<AtomicU64>,
    /// Whether each worker is (about to be) parked and needs an unpark.
    parked: Vec<AtomicBool>,
    shutdown: AtomicBool,
    /// Row-major copy of the lookahead matrix, so workers can compute
    /// speculative-level horizons without touching the engine.
    matrix_ps: Vec<u64>,
    /// Busy-wait budget for barrier waits (adaptive, see [`relax`]).
    spin_limit: u32,
    /// Spin budget of the idle ladder before yielding (adaptive).
    idle_spin_limit: u32,
    /// Speculative run-ahead depth `K` (0 = conservative only).
    spec_k: AtomicU64,
    /// The coordinator's horizon cap for the current region, in ps
    /// (`u64::MAX` = uncapped).
    cap_ps: AtomicU64,
    /// Frozen per-shard staging floors of the current region, in ps
    /// (`u64::MAX` = none). Staging only changes in the caller's exchange
    /// step, which never runs mid-region, so the freeze is exact.
    src_floor_ps: Vec<AtomicU64>,
    /// Per-shard published floors: monotone within a region, refreshed by
    /// each shard after every level it completes.
    pub_floor_ps: Vec<AtomicU64>,
    /// Per-shard last *safe* (non-speculative) horizon reached in the
    /// current region — peers predict from it, the coordinator reads the
    /// final values back as the region's horizons.
    pub_exec_ps: Vec<AtomicU64>,
    /// Per-shard speculated clock (`u64::MAX` = the shard did not
    /// speculate this region), validated by the coordinator at the
    /// barrier.
    spec_clock_ps: Vec<AtomicU64>,
}

/// A deterministic conservative-parallel driver over [`EpochWorld`]
/// shards. See the module docs for the synchronization argument.
pub struct ShardedEngine<S: EpochWorld> {
    ctl: Arc<Control<S>>,
    workers: Vec<JoinHandle<()>>,
    /// Worker thread handles for unparking, indexed like `ctl.done`.
    worker_threads: Vec<Thread>,
    matrix: LookaheadMatrix,
    /// Earliest staged-but-undelivered external input per shard, set by
    /// the caller between epochs; participates in that shard's floor.
    source_floors: Vec<Option<SimTime>>,
    /// Optional inclusive upper bound on every horizon (the caller's
    /// partition-invariant quantum boundary).
    cap: Option<SimTime>,
    /// Scratch: per-shard floors of the epoch being planned (ps;
    /// `u64::MAX` = no floor).
    floors_ps: Vec<u64>,
    /// Per-shard horizons of the last executed epoch.
    horizons: Vec<SimTime>,
    epochs: u64,
    /// Highest horizon of the last executed epoch.
    horizon: SimTime,
    /// Speculative run-ahead depth `K` (0 = conservative only).
    spec_k: u32,
    /// Speculated clocks that validated at the barrier.
    spec_committed: u64,
    /// Speculated clocks refuted at the barrier and rolled back.
    spec_rolled_back: u64,
}

impl<S: EpochWorld> ShardedEngine<S> {
    /// Builds an engine with the scalar lookahead — every pair bounded by
    /// the same `lookahead`, the maximally pessimistic (but always safe)
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `lookahead` is zero.
    pub fn new(shards: Vec<S>, lookahead: SimTime) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let matrix = LookaheadMatrix::uniform(shards.len(), lookahead);
        ShardedEngine::with_matrix(shards, matrix)
    }

    /// Builds an engine over `shards` with a per-pair lookahead matrix,
    /// spawning `shards.len() - 1` worker threads (shard 0 runs on the
    /// calling thread).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the matrix's shard count does not
    /// match.
    pub fn with_matrix(shards: Vec<S>, matrix: LookaheadMatrix) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert_eq!(
            matrix.shards(),
            shards.len(),
            "lookahead matrix must cover every shard"
        );
        let n = shards.len();
        // Oversubscribed runs must not busy-wait: every spin steals
        // cycles from a shard that still has work.
        let oversubscribed = n > host_parallelism();
        let ctl = Arc::new(Control {
            slots: shards.into_iter().map(Mutex::new).collect(),
            epoch: AtomicU64::new(0),
            horizons_ps: (0..n).map(|_| AtomicU64::new(0)).collect(),
            done: (0..n.saturating_sub(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            ran: (0..n.saturating_sub(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            parked: (0..n.saturating_sub(1))
                .map(|_| AtomicBool::new(false))
                .collect(),
            shutdown: AtomicBool::new(false),
            matrix_ps: (0..n)
                .flat_map(|s| (0..n).map(move |d| (s, d)))
                .map(|(s, d)| matrix.entry_ps(s, d))
                .collect(),
            spin_limit: if oversubscribed {
                OVERSUBSCRIBED_SPIN_LIMIT
            } else {
                PROVISIONED_SPIN_LIMIT
            },
            idle_spin_limit: if oversubscribed {
                OVERSUBSCRIBED_SPIN_LIMIT
            } else {
                IDLE_SPIN_LIMIT
            },
            spec_k: AtomicU64::new(0),
            cap_ps: AtomicU64::new(u64::MAX),
            src_floor_ps: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            pub_floor_ps: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            pub_exec_ps: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            spec_clock_ps: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
        });
        let workers: Vec<JoinHandle<()>> = (1..n)
            .map(|i| {
                let ctl = Arc::clone(&ctl);
                std::thread::Builder::new()
                    .name(format!("sonuma-shard-{i}"))
                    .spawn(move || worker_loop(&ctl, i))
                    .expect("spawn shard worker")
            })
            .collect();
        let worker_threads = workers.iter().map(|h| h.thread().clone()).collect();
        ShardedEngine {
            ctl,
            workers,
            worker_threads,
            matrix,
            source_floors: vec![None; n],
            cap: None,
            floors_ps: vec![u64::MAX; n],
            horizons: vec![SimTime::ZERO; n],
            epochs: 0,
            horizon: SimTime::ZERO,
            spec_k: 0,
            spec_committed: 0,
            spec_rolled_back: 0,
        }
    }

    /// Sets the speculative run-ahead depth: each call to
    /// [`ShardedEngine::run_epoch`] may execute up to `k` additional
    /// epoch levels per shard without re-synchronizing, plus one
    /// clock-only speculation validated at the barrier (see the module
    /// docs). `0` restores pure conservative execution. Results are
    /// byte-identical for every `k`; only wall-clock behavior and the
    /// [`ShardedEngine::speculation`] tallies change.
    pub fn set_speculation(&mut self, k: u32) {
        self.spec_k = k;
        self.ctl.spec_k.store(u64::from(k), Ordering::Relaxed);
    }

    /// The configured speculative run-ahead depth `K`.
    pub fn speculation_depth(&self) -> u32 {
        self.spec_k
    }

    /// `(committed, rolled_back)` clock speculations so far. Depends on
    /// host scheduling (a slow peer means stale floors, means bolder
    /// bets), so it is reporting metadata, never part of the simulated
    /// result.
    pub fn speculation(&self) -> (u64, u64) {
        (self.spec_committed, self.spec_rolled_back)
    }

    /// Number of shards (== executing threads).
    pub fn num_shards(&self) -> usize {
        self.ctl.slots.len()
    }

    /// The tightest pairwise lookahead — the scalar epoch width the
    /// matrix sharpens (and equals, under a uniform matrix).
    pub fn lookahead(&self) -> SimTime {
        self.matrix.min()
    }

    /// The per-pair lookahead matrix.
    pub fn matrix(&self) -> &LookaheadMatrix {
        &self.matrix
    }

    /// Epochs executed so far. Partition-*dependent*: per-destination
    /// horizons are shaped by the lookahead matrix, so equivalent runs at
    /// different shard counts may batch the same events into different
    /// epoch structures (only quantum boundaries are invariant).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The highest per-shard boundary of the last completed epoch.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// The lowest per-shard boundary of the last completed epoch — the
    /// caller's commit frontier: every shard has fully executed
    /// `[.., min_horizon]`, so staged traffic injected at or before it is
    /// final.
    pub fn min_horizon(&self) -> SimTime {
        *self.horizons.iter().min().expect("nonempty horizons")
    }

    /// The boundary shard `i` was advanced to by the last epoch.
    pub fn shard_horizon(&self, i: usize) -> SimTime {
        self.horizons[i]
    }

    /// Publishes the earliest staged-but-undelivered external input bound
    /// for shard `shard` (or `None` when its staging is empty). The value
    /// joins the shard's next-event floor when computing every shard's
    /// next horizon: staged traffic is work the shard will do, just not
    /// scheduled yet.
    pub fn set_source_floor(&mut self, shard: usize, floor: Option<SimTime>) {
        self.source_floors[shard] = floor;
    }

    /// Caps every horizon at `cap` (inclusive). Callers use this to stop
    /// epochs at a partition-invariant boundary they align all clocks to;
    /// `None` removes the cap.
    pub fn set_cap(&mut self, cap: Option<SimTime>) {
        self.cap = cap;
    }

    /// Aligns every shard's clock forward to `to` (per-shard no-op when
    /// already past it).
    pub fn align_all(&mut self, to: SimTime) {
        self.for_each_shard(|_, s| s.align_clock(to));
    }

    /// Runs `f` with exclusive access to shard `i`. Must only be called
    /// between epochs (never concurrently with [`ShardedEngine::run_epoch`]),
    /// which the `&mut self` receiver enforces.
    pub fn with_shard<R>(&mut self, i: usize, f: impl FnOnce(&mut S) -> R) -> R {
        let mut guard = self.ctl.slots[i].lock().expect("shard poisoned");
        f(&mut guard)
    }

    /// Runs `f` with read access to shard `i`. Workers only hold a
    /// shard's lock while an epoch is executing, and epochs only execute
    /// inside [`ShardedEngine::run_epoch`], so between epochs this is an
    /// uncontended lock — it exists so `&self` statistics queries don't
    /// need exclusive access to the whole engine.
    pub fn peek_shard<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        let guard = self.ctl.slots[i].lock().expect("shard poisoned");
        f(&guard)
    }

    /// Runs `f` over every shard in index order.
    pub fn for_each_shard(&mut self, mut f: impl FnMut(usize, &mut S)) {
        for i in 0..self.ctl.slots.len() {
            let mut guard = self.ctl.slots[i].lock().expect("shard poisoned");
            f(i, &mut guard);
        }
    }

    /// Executes one epoch: gathers per-shard floors (earliest pending
    /// event, merged with the caller-published source floor), computes
    /// every shard's horizon from the lookahead matrix, runs all shards
    /// to their horizons in parallel, aligns each clock to its horizon,
    /// and returns the number of events executed.
    ///
    /// Returns 0 without running when no shard has a floor. Note that
    /// with source floors set, a return of 0 does *not* mean the system
    /// is drained — staged traffic may still need committing; the machine
    /// layer's quantum loop terminates on "nothing ran, nothing staged,
    /// nothing committed".
    ///
    /// A shard's horizon may be below its clock when a previously empty
    /// peer gained a floor since the last epoch; running and aligning are
    /// both no-ops then, and conservative safety is unaffected (delivery
    /// bounds derive from node-level hop distances, which satisfy the
    /// triangle inequality).
    pub fn run_epoch(&mut self) -> u64 {
        let n = self.ctl.slots.len();
        // Per-shard floors; all locks are free here. `pending_floor`
        // rather than `next_event_time`: any output a shard staged but
        // the caller has not exchanged yet fences its peers too.
        let mut any = false;
        for i in 0..n {
            let next = self.ctl.slots[i]
                .lock()
                .expect("shard poisoned")
                .pending_floor();
            let floor = match (next, self.source_floors[i]) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            self.floors_ps[i] = floor.map_or(u64::MAX, SimTime::as_ps);
            any |= floor.is_some();
        }
        if !any {
            return 0;
        }
        // Every epoch window is half-open; horizons are inclusive, hence
        // the - 1 ps.
        let cap_ps = self.cap.map_or(u64::MAX, SimTime::as_ps);
        for d in 0..n {
            let h = self.matrix.horizon_ps(d, &self.floors_ps).min(cap_ps);
            self.horizons[d] = SimTime::from_ps(h);
            self.ctl.horizons_ps[d].store(h, Ordering::Relaxed);
        }
        let spec = self.spec_k > 0;
        if spec {
            // Seed the region: exact floors, the frozen staging floors,
            // the cap, and cleared speculation slots. The epoch release
            // below publishes these to the workers.
            self.ctl.cap_ps.store(cap_ps, Ordering::Relaxed);
            for i in 0..n {
                let src = self.source_floors[i].map_or(u64::MAX, SimTime::as_ps);
                self.ctl.src_floor_ps[i].store(src, Ordering::Relaxed);
                self.ctl.pub_floor_ps[i].store(self.floors_ps[i], Ordering::Relaxed);
                self.ctl.pub_exec_ps[i].store(
                    self.ctl.horizons_ps[i].load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                self.ctl.spec_clock_ps[i].store(u64::MAX, Ordering::Relaxed);
            }
        }

        let mut total = 0u64;
        if n == 1 {
            let mut shard = self.ctl.slots[0].lock().expect("shard poisoned");
            total += run_region(&self.ctl, 0, &mut shard);
        } else {
            let seq = self.ctl.epoch.load(Ordering::Relaxed) + 1;
            // Release the workers (the store publishes the horizons);
            // SeqCst pairs with the park handshake in `worker_loop`.
            self.ctl.epoch.store(seq, Ordering::SeqCst);
            for (w, parked) in self.ctl.parked.iter().enumerate() {
                if parked.load(Ordering::SeqCst) {
                    self.worker_threads[w].unpark();
                }
            }
            // Shard 0 runs on this thread while the workers run theirs.
            {
                let mut shard = self.ctl.slots[0].lock().expect("shard poisoned");
                total += run_region(&self.ctl, 0, &mut shard);
            }
            for (i, done) in self.ctl.done.iter().enumerate() {
                let mut spins = 0;
                while done.load(Ordering::Acquire) != seq {
                    relax(&mut spins, self.ctl.spin_limit);
                }
                total += self.ctl.ran[i].load(Ordering::Relaxed);
            }
        }
        if spec {
            self.settle_region();
        }
        self.epochs += 1;
        self.horizon = *self.horizons.iter().max().expect("nonempty horizons");
        total
    }

    /// Barrier-time settlement of a speculative region: adopt the safe
    /// horizons every shard actually reached, then validate each
    /// speculated clock against the horizon the now-exact floors certify,
    /// rolling back only the shards whose bet failed.
    fn settle_region(&mut self) {
        let n = self.ctl.slots.len();
        let cap_ps = self.cap.map_or(u64::MAX, SimTime::as_ps);
        for i in 0..n {
            self.horizons[i] = SimTime::from_ps(self.ctl.pub_exec_ps[i].load(Ordering::Acquire));
            // Post-region floors are exact: every shard published after
            // its last level, and the barrier ordered those stores before
            // our loads.
            self.floors_ps[i] = self.ctl.pub_floor_ps[i].load(Ordering::Acquire);
        }
        for d in 0..n {
            let clock = self.ctl.spec_clock_ps[d].load(Ordering::Acquire);
            if clock == u64::MAX {
                continue;
            }
            let certified = self.matrix.horizon_ps(d, &self.floors_ps).min(cap_ps);
            if clock <= certified {
                self.spec_committed += 1;
            } else {
                self.ctl.slots[d].lock().expect("shard poisoned").restore();
                self.spec_rolled_back += 1;
            }
        }
    }
}

/// Horizon shard `dst` may advance to given the currently *published*
/// floors — conservative because published floors are monotone lower
/// bounds within a region. With `predicted`, each peer's floor is bumped
/// to what finishing its current level would imply (one past its last
/// safe horizon, never past its frozen staging floor): the optimistic
/// bet the barrier validates.
fn region_horizon<S>(ctl: &Control<S>, dst: usize, predicted: bool) -> u64 {
    let n = ctl.slots.len();
    let mut h = u64::MAX;
    for s in 0..n {
        let mut f = ctl.pub_floor_ps[s].load(Ordering::Acquire);
        if predicted && f != u64::MAX {
            let exec = ctl.pub_exec_ps[s].load(Ordering::Acquire);
            let src = ctl.src_floor_ps[s].load(Ordering::Relaxed);
            f = f.max(exec.saturating_add(1).min(src));
        }
        if f != u64::MAX {
            h = h.min(
                f.saturating_add(ctl.matrix_ps[s * n + dst])
                    .saturating_sub(1),
            );
        }
    }
    h.min(ctl.cap_ps.load(Ordering::Relaxed))
}

/// Publishes shard `index`'s floor (pending work merged with the frozen
/// staging floor) and the safe horizon it just reached.
fn publish_progress<S: EpochWorld>(ctl: &Control<S>, index: usize, shard: &mut S, exec_ps: u64) {
    let src = ctl.src_floor_ps[index].load(Ordering::Relaxed);
    let floor = shard
        .pending_floor()
        .map_or(u64::MAX, SimTime::as_ps)
        .min(src);
    ctl.pub_floor_ps[index].store(floor, Ordering::Release);
    ctl.pub_exec_ps[index].store(exec_ps, Ordering::Release);
}

/// One shard's work for one release: the conservative level-0 epoch,
/// then (with speculation enabled) up to `K` further levels against
/// peers' published floors, then at most one clock-only speculation.
/// Shared by the coordinator (shard 0) and the worker loop.
fn run_region<S: EpochWorld>(ctl: &Control<S>, index: usize, shard: &mut S) -> u64 {
    let mut h = ctl.horizons_ps[index].load(Ordering::Relaxed);
    let mut ran = shard.run_epoch(SimTime::from_ps(h));
    shard.align_clock(SimTime::from_ps(h));
    let k = ctl.spec_k.load(Ordering::Relaxed);
    if k == 0 {
        return ran;
    }
    publish_progress(ctl, index, shard, h);
    for _ in 0..k {
        let next = region_horizon(ctl, index, false);
        if next == u64::MAX || next <= h {
            break;
        }
        h = next;
        ran += shard.run_epoch(SimTime::from_ps(h));
        shard.align_clock(SimTime::from_ps(h));
        publish_progress(ctl, index, shard, h);
    }
    // Out of provable horizon: bet the clock (never an event) on peers
    // completing their current level. Capped below the next pending
    // event so a refuted bet needs only a clock rewind to undo.
    let predicted = region_horizon(ctl, index, true);
    let event_cap = shard
        .next_event_time()
        .map_or(u64::MAX, |t| t.as_ps().saturating_sub(1));
    let predicted = predicted.min(event_cap);
    if predicted != u64::MAX && predicted > h {
        shard.snapshot();
        shard.align_clock(SimTime::from_ps(predicted));
        ctl.spec_clock_ps[index].store(predicted, Ordering::Release);
    }
    ran
}

fn worker_loop<S: EpochWorld>(ctl: &Control<S>, index: usize) {
    let worker = index - 1;
    let mut last = 0u64;
    let mut spins = 0u32;
    loop {
        let seq = ctl.epoch.load(Ordering::Acquire);
        if seq == last {
            if ctl.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Idle: spin briefly (the next epoch usually arrives within
            // microseconds), degrade to yielding, then park. The parked
            // flag is raised *before* re-checking `epoch`, and the
            // coordinator stores `epoch` *before* reading the flags (both
            // SeqCst), so either the worker sees the new epoch or the
            // coordinator sees the flag and unparks — a lost wakeup needs
            // both to miss, which the ordering forbids; the timeout is
            // belt-and-braces and bounds shutdown latency.
            spins += 1;
            if spins < ctl.idle_spin_limit {
                std::hint::spin_loop();
            } else if spins < ctl.idle_spin_limit + IDLE_YIELD_LIMIT {
                std::thread::yield_now();
            } else {
                ctl.parked[worker].store(true, Ordering::SeqCst);
                if ctl.epoch.load(Ordering::SeqCst) == last && !ctl.shutdown.load(Ordering::SeqCst)
                {
                    std::thread::park_timeout(IDLE_PARK_TIMEOUT);
                }
                ctl.parked[worker].store(false, Ordering::SeqCst);
            }
            continue;
        }
        spins = 0;
        last = seq;
        let ran = {
            let mut shard = ctl.slots[index].lock().expect("shard poisoned");
            run_region(ctl, index, &mut shard)
        };
        ctl.ran[worker].store(ran, Ordering::Relaxed);
        ctl.done[worker].store(seq, Ordering::Release);
    }
}

impl<S: EpochWorld> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        self.ctl.shutdown.store(true, Ordering::SeqCst);
        for thread in &self.worker_threads {
            thread.unpark();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<S: EpochWorld> std::fmt::Debug for ShardedEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.ctl.slots.len())
            .field("lookahead", &self.matrix.min())
            .field("epochs", &self.epochs)
            .field("horizon", &self.horizon)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventEngine, World};

    /// A minimal world: marks fire at their scheduled time and may chain.
    struct Trace {
        id: usize,
        fired: Vec<u64>,
    }

    enum Ev {
        Mark(u64),
        Chain { left: u32, step_ns: u64 },
    }

    impl World for Trace {
        type Event = Ev;
        fn handle(&mut self, engine: &mut EventEngine<Self>, event: Ev) {
            match event {
                Ev::Mark(tag) => self.fired.push(tag),
                Ev::Chain { left, step_ns } => {
                    self.fired.push(engine.now().as_ps());
                    if left > 0 {
                        engine.schedule_in(
                            SimTime::from_ns(step_ns),
                            Ev::Chain {
                                left: left - 1,
                                step_ns,
                            },
                        );
                    }
                }
            }
        }
    }

    struct Slot {
        world: Trace,
        engine: EventEngine<Trace>,
        saved: Option<(SimTime, u64)>,
    }

    impl EpochWorld for Slot {
        fn run_epoch(&mut self, horizon: SimTime) -> u64 {
            self.engine.run_until(&mut self.world, horizon)
        }
        fn next_event_time(&mut self) -> Option<SimTime> {
            self.engine.next_time()
        }
        fn align_clock(&mut self, to: SimTime) {
            self.engine.advance_now_to(to);
        }
        fn snapshot(&mut self) {
            self.saved = Some((self.engine.now(), self.engine.events_executed()));
        }
        fn restore(&mut self) {
            let (now, executed) = self.saved.take().expect("restore without snapshot");
            assert_eq!(
                executed,
                self.engine.events_executed(),
                "clock-only speculation must not have executed events"
            );
            self.engine.rewind_now_to(now);
        }
    }

    fn slot(id: usize) -> Slot {
        Slot {
            world: Trace {
                id,
                fired: Vec::new(),
            },
            engine: EventEngine::new(),
            saved: None,
        }
    }

    #[test]
    fn epochs_advance_and_drain() {
        let mut shards: Vec<Slot> = (0..3).map(slot).collect();
        for (i, s) in shards.iter_mut().enumerate() {
            s.engine.schedule_at(
                SimTime::from_ns(10 * (i as u64 + 1)),
                Ev::Chain {
                    left: 4,
                    step_ns: 7,
                },
            );
        }
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(5));
        let mut total = 0;
        loop {
            let ran = engine.run_epoch();
            if ran == 0 {
                break;
            }
            total += ran;
        }
        assert_eq!(total, 15, "5 chained events per shard");
        engine.for_each_shard(|i, s| {
            assert_eq!(
                s.world.fired.len(),
                5,
                "shard {} fired all events",
                s.world.id
            );
            assert!(s.world.fired.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(i, s.world.id);
        });
    }

    #[test]
    fn epoch_count_is_shard_count_invariant() {
        // The same global event set must produce the same number of
        // epochs whether it lives in 1 shard or 4.
        let run = |nshards: usize| -> (u64, u64) {
            let mut shards: Vec<Slot> = (0..nshards).map(slot).collect();
            for k in 0..16u64 {
                shards[k as usize % nshards]
                    .engine
                    .schedule_at(SimTime::from_ns(3 * k), Ev::Mark(k));
            }
            let mut engine = ShardedEngine::new(shards, SimTime::from_ns(4));
            let mut events = 0;
            loop {
                let ran = engine.run_epoch();
                if ran == 0 {
                    break;
                }
                events += ran;
            }
            (events, engine.epochs())
        };
        let (e1, epochs1) = run(1);
        let (e4, epochs4) = run(4);
        assert_eq!(e1, 16);
        assert_eq!(e1, e4);
        assert_eq!(
            epochs1, epochs4,
            "epoch structure must not depend on sharding"
        );
    }

    #[test]
    fn clocks_align_to_the_horizon() {
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[0]
            .engine
            .schedule_at(SimTime::from_ns(100), Ev::Mark(0));
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(10));
        assert_eq!(engine.run_epoch(), 1);
        let horizon = engine.horizon();
        assert_eq!(horizon, SimTime::from_ps(100_000 + 10_000 - 1));
        assert_eq!(engine.min_horizon(), horizon, "uniform matrix: one bound");
        // Both shards — including the one that ran nothing — sit exactly
        // on the boundary.
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), horizon));
    }

    #[test]
    fn distant_shards_run_ahead_of_the_scalar_bound() {
        // Shard 1 is "far" from shard 0 (100 ns each way) but close to
        // itself (its own staged traffic round-trips in 100 ns too); with
        // only shard 1 holding events, its horizon is bounded by its own
        // pair entry, far past the scalar minimum.
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[1].engine.schedule_at(SimTime::ZERO, Ev::Mark(1));
        let la = |s: usize, d: usize| {
            if s == d {
                SimTime::from_ns(100)
            } else {
                SimTime::from_ns(10)
            }
        };
        let mut engine = ShardedEngine::with_matrix(shards, LookaheadMatrix::from_fn(2, la));
        assert_eq!(engine.matrix().min(), SimTime::from_ns(10));
        assert_eq!(engine.matrix().max(), SimTime::from_ns(100));
        assert_eq!(engine.run_epoch(), 1);
        // Shard 1's horizon: min(floor1 + la[1][1]) - 1 = 100 ns - 1 ps.
        assert_eq!(engine.shard_horizon(1), SimTime::from_ps(100_000 - 1));
        // Shard 0's horizon: min(floor1 + la[1][0]) - 1 = 10 ns - 1 ps —
        // it cannot outrun traffic shard 1 might send it.
        assert_eq!(engine.shard_horizon(0), SimTime::from_ps(10_000 - 1));
        assert_eq!(engine.min_horizon(), SimTime::from_ps(10_000 - 1));
        engine.peek_shard(0, |s| {
            assert_eq!(s.engine.now(), SimTime::from_ps(10_000 - 1))
        });
        engine.peek_shard(1, |s| {
            assert_eq!(s.engine.now(), SimTime::from_ps(100_000 - 1))
        });
    }

    #[test]
    fn source_floors_constrain_horizons() {
        // Shard 0 has no local events but 50 ns of staged input; shard 1's
        // event sits at 200 ns. Horizons must respect the staged floor.
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[1]
            .engine
            .schedule_at(SimTime::from_ns(200), Ev::Mark(0));
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(10));
        engine.set_source_floor(0, Some(SimTime::from_ns(50)));
        let ran = engine.run_epoch();
        assert_eq!(ran, 0, "nothing executable below the horizon");
        assert_eq!(engine.epochs(), 1);
        // Both horizons: min(50 + 10, 200 + 10) - 1.
        assert_eq!(engine.min_horizon(), SimTime::from_ps(60_000 - 1));
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), SimTime::from_ps(60_000 - 1)));
        // Clearing the floor lets the 200 ns event bound the next epoch.
        engine.set_source_floor(0, None);
        assert_eq!(engine.run_epoch(), 1);
        assert_eq!(engine.min_horizon(), SimTime::from_ps(210_000 - 1));
    }

    #[test]
    fn cap_bounds_every_horizon() {
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[0].engine.schedule_at(SimTime::ZERO, Ev::Mark(0));
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(100));
        engine.set_cap(Some(SimTime::from_ns(30)));
        assert_eq!(engine.run_epoch(), 1);
        assert_eq!(engine.horizon(), SimTime::from_ns(30));
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), SimTime::from_ns(30)));
        engine.set_cap(None);
        engine.align_all(SimTime::from_ns(40));
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), SimTime::from_ns(40)));
    }

    #[test]
    fn uniform_matrix_matches_scalar_engine_epochs() {
        // A from_fn matrix with constant entries must behave exactly like
        // the scalar constructor: same epoch count, same horizons.
        let build = |uniform: bool| -> (u64, SimTime) {
            let mut shards: Vec<Slot> = (0..3).map(slot).collect();
            for k in 0..9u64 {
                shards[k as usize % 3]
                    .engine
                    .schedule_at(SimTime::from_ns(5 * k), Ev::Mark(k));
            }
            let mut engine = if uniform {
                ShardedEngine::new(shards, SimTime::from_ns(7))
            } else {
                ShardedEngine::with_matrix(
                    shards,
                    LookaheadMatrix::from_fn(3, |_, _| SimTime::from_ns(7)),
                )
            };
            while engine.run_epoch() > 0 {}
            (engine.epochs(), engine.horizon())
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn parked_workers_wake_for_the_next_epoch() {
        // Long enough between epochs that workers walk the whole idle
        // ladder (spin, yield, park); the next epoch must still run.
        let mut shards: Vec<Slot> = (0..3).map(slot).collect();
        for s in shards.iter_mut() {
            s.engine.schedule_at(SimTime::from_ns(1), Ev::Mark(0));
            s.engine.schedule_at(SimTime::from_ns(500), Ev::Mark(1));
        }
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(4));
        assert_eq!(engine.run_epoch(), 3);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(engine.run_epoch(), 3, "parked workers must wake and run");
        engine.for_each_shard(|_, s| assert_eq!(s.world.fired.len(), 2));
    }

    /// Drives chained events through an engine at speculation depth `k`
    /// and returns (fired traces per shard, total events, epochs).
    fn drive_chains(nshards: usize, k: u32) -> (Vec<Vec<u64>>, u64, u64) {
        let mut shards: Vec<Slot> = (0..nshards).map(slot).collect();
        for (i, s) in shards.iter_mut().enumerate() {
            s.engine.schedule_at(
                SimTime::from_ns(10 * (i as u64 + 1)),
                Ev::Chain {
                    left: 19,
                    step_ns: 13,
                },
            );
        }
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(5));
        engine.set_speculation(k);
        let mut total = 0;
        loop {
            let ran = engine.run_epoch();
            if ran == 0 {
                break;
            }
            total += ran;
        }
        let mut fired = Vec::new();
        engine.for_each_shard(|_, s| fired.push(s.world.fired.clone()));
        (fired, total, engine.epochs())
    }

    #[test]
    fn speculation_is_observationally_invisible() {
        // Every K must fire the same events in the same per-shard order
        // as the conservative engine; only epoch batching may differ.
        let (fired0, total0, _) = drive_chains(3, 0);
        assert_eq!(total0, 60);
        for k in 1..=4 {
            let (fired, total, _) = drive_chains(3, k);
            assert_eq!(total, total0, "K={k} executed a different event count");
            assert_eq!(fired, fired0, "K={k} changed the event order");
        }
    }

    #[test]
    fn speculative_levels_cut_barrier_count() {
        // A single shard chains its own floor level to level, so every
        // region covers K + 1 conservative epochs' worth of horizon:
        // strictly fewer barriers for the same work.
        let (_, total0, epochs0) = drive_chains(1, 0);
        let (_, total3, epochs3) = drive_chains(1, 3);
        assert_eq!(total0, total3);
        assert!(
            epochs3 < epochs0,
            "K=3 regions must batch epochs ({epochs3} vs {epochs0})"
        );
    }

    #[test]
    fn single_shard_clock_speculation_commits() {
        // One shard, events spaced far beyond the lookahead: after the
        // safe levels drain, the engine bets the clock up to just below
        // the next event. With exact self-floors the bet always
        // validates — commits accrue, rollbacks never.
        let mut shards = vec![slot(0)];
        shards[0].engine.schedule_at(
            SimTime::ZERO,
            Ev::Chain {
                left: 9,
                step_ns: 1000,
            },
        );
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(10));
        engine.set_speculation(1);
        while engine.run_epoch() > 0 {}
        let (committed, rolled_back) = engine.speculation();
        assert!(committed > 0, "clock speculation never validated");
        assert_eq!(rolled_back, 0, "exact self-floors cannot be refuted");
        engine.for_each_shard(|_, s| assert_eq!(s.world.fired.len(), 10));
    }

    #[test]
    fn oversubscribed_run_terminates_promptly() {
        // 16 shards on any host CI offers is oversubscribed; the adaptive
        // spin thresholds must keep the run from burning its wall budget
        // busy-waiting. Generous bound — the pre-adaptive ladder could
        // spin for minutes on a 1-core host.
        let start = std::time::Instant::now();
        let (fired, total, _) = drive_chains(16, 2);
        assert_eq!(total, 16 * 20);
        assert!(fired.iter().all(|f| f.len() == 20));
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "oversubscribed run took {:?}",
            start.elapsed()
        );
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_panics() {
        let _ = ShardedEngine::new(vec![slot(0)], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "must cover every shard")]
    fn mismatched_matrix_panics() {
        let _ = ShardedEngine::with_matrix(
            vec![slot(0)],
            LookaheadMatrix::uniform(2, SimTime::from_ns(1)),
        );
    }
}
