//! Conservative-parallel execution: shards advancing in lookahead-bounded
//! epochs.
//!
//! [`ShardedEngine`] runs `N` shard worlds — each an independent
//! discrete-event simulation over its own slice of state — in *epochs*
//! bounded by a [`LookaheadMatrix`]: `lookahead[s][d]` is the minimum
//! simulated time any action of shard `s` needs before it can affect
//! shard `d` (for the soNUMA fabric: the minimum hop distance between the
//! shards' node ranges times the per-hop latency, plus one serialization).
//! Each epoch, every shard `d` advances to
//!
//! ```text
//! horizon[d] = min over shards s of (floor[s] + lookahead[s][d]) - 1
//! ```
//!
//! where `floor[s]` is the earliest thing shard `s` could still do: its
//! earliest pending local event, or the earliest staged-but-undelivered
//! cross-shard message bound *into* it (the caller publishes the latter
//! via [`ShardedEngine::set_source_floor`]). Within an epoch every shard
//! executes its local events concurrently; cross-shard effects are staged
//! by the worlds and exchanged by the *caller* between epochs, and by
//! construction they can only land after the receiver's horizon — the
//! classic conservative (no-rollback) synchronization argument, sharpened
//! per shard pair. A [uniform matrix](LookaheadMatrix::uniform) reduces
//! exactly to the old scalar behavior: every horizon collapses to
//! `global min + lookahead - 1`.
//!
//! Determinism is the point: the epoch boundaries are a pure function of
//! event timestamps and the matrix, never of host thread scheduling, so a
//! run's event interleaving — and therefore its results — is bit-identical
//! for any shard count, provided the caller's exchange step merges staged
//! traffic in a partition-independent order (see `sonuma-machine`'s
//! `ShardedCluster` for the fabric merge that does this, and for how it
//! re-aligns shard clocks to partition-invariant quantum boundaries so
//! externally injected work charges invariant times).
//!
//! Shards execute on a pool of persistent worker threads. Between epochs a
//! worker spins briefly (epochs are microseconds of host time apart, so
//! futex latency would dominate a sleep), degrades to `yield_now`, and
//! finally parks with a timeout — so an idle, oversubscribed, or 1-core
//! host does not burn CPU while the coordinator is busy elsewhere. Shard 0
//! always runs on the coordinating thread, so a `threads = N` run uses
//! exactly `N` OS threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use crate::time::SimTime;

/// One shard of a sharded simulation: everything [`ShardedEngine`] needs
/// to drive it through epochs.
///
/// Implementations bundle a world and its event engine. `Send` is
/// required because shards execute on pool threads.
pub trait EpochWorld: Send + 'static {
    /// Executes every pending local event with `time <= horizon`; returns
    /// the number executed.
    fn run_epoch(&mut self, horizon: SimTime) -> u64;

    /// Timestamp of the earliest pending local event, if any.
    fn next_event_time(&mut self) -> Option<SimTime>;

    /// Aligns the shard's clock to the epoch boundary `to` (which is at
    /// or after every event executed so far, and before every pending
    /// one). A target at or before the current clock is a no-op — the
    /// engine passes stale targets when a shard's horizon regresses after
    /// an empty peer gains a floor.
    fn align_clock(&mut self, to: SimTime);
}

/// Per-shard-pair conservative lookahead, in simulated time.
///
/// `get(s, d)` bounds from below how long any action of shard `s` takes to
/// affect shard `d` — including `s == d`, because in the sharded machine
/// even intra-shard packets take the staged mailbox path. Every entry must
/// be positive: a zero lookahead admits no epoch in which concurrency is
/// safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadMatrix {
    n: usize,
    ps: Vec<u64>,
}

impl LookaheadMatrix {
    /// A matrix with every entry equal to `lookahead` — the scalar
    /// conservative bound. [`ShardedEngine`] behaves exactly like the
    /// historical global-barrier engine under a uniform matrix.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `lookahead` is zero.
    pub fn uniform(shards: usize, lookahead: SimTime) -> Self {
        LookaheadMatrix::from_fn(shards, |_, _| lookahead)
    }

    /// Builds an `shards x shards` matrix from `f(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or any entry is zero.
    pub fn from_fn(shards: usize, mut f: impl FnMut(usize, usize) -> SimTime) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut ps = Vec::with_capacity(shards * shards);
        for s in 0..shards {
            for d in 0..shards {
                let l = f(s, d);
                assert!(
                    l > SimTime::ZERO,
                    "conservative execution requires a positive lookahead \
                     (entry [{s}][{d}] is zero)"
                );
                ps.push(l.as_ps());
            }
        }
        LookaheadMatrix { n: shards, ps }
    }

    /// Number of shards the matrix covers.
    pub fn shards(&self) -> usize {
        self.n
    }

    /// The `src -> dst` lookahead.
    pub fn get(&self, src: usize, dst: usize) -> SimTime {
        SimTime::from_ps(self.ps[src * self.n + dst])
    }

    #[inline]
    fn entry_ps(&self, src: usize, dst: usize) -> u64 {
        self.ps[src * self.n + dst]
    }

    /// Inclusive horizon shard `dst` may run to under `floors_ps`
    /// (`u64::MAX` = no floor): `min over s (floor[s] + la[s][dst]) - 1`,
    /// or `u64::MAX` when no shard has a floor. Shared by
    /// [`ShardedEngine::run_epoch`] and [`LookaheadMatrix::min_horizon`]
    /// so the two can never drift.
    fn horizon_ps(&self, dst: usize, floors_ps: &[u64]) -> u64 {
        let mut h = u64::MAX;
        for (s, &f) in floors_ps.iter().enumerate() {
            if f != u64::MAX {
                h = h.min(f.saturating_add(self.entry_ps(s, dst)).saturating_sub(1));
            }
        }
        h
    }

    /// The tightest horizon any shard would get in an epoch whose
    /// per-shard floors are `floors` — i.e. the commit frontier that
    /// epoch would establish (`ShardedEngine::min_horizon` after
    /// `run_epoch`). `None` when no shard has a floor.
    ///
    /// Horizons are pure floor arithmetic, so a caller that already knows
    /// every floor can advance its commit frontier — and turn staged
    /// traffic into delivery events — *before* running the epoch, instead
    /// of spending a whole (possibly empty) epoch just to publish the
    /// frontier.
    pub fn min_horizon(&self, floors: &[Option<SimTime>]) -> Option<SimTime> {
        assert_eq!(floors.len(), self.n, "one floor per shard");
        let ps: Vec<u64> = floors
            .iter()
            .map(|f| f.map_or(u64::MAX, SimTime::as_ps))
            .collect();
        let h = (0..self.n)
            .map(|d| self.horizon_ps(d, &ps))
            .min()
            .expect("nonempty matrix");
        (h != u64::MAX).then(|| SimTime::from_ps(h))
    }

    /// The tightest entry — the scalar lookahead the matrix sharpens.
    pub fn min(&self) -> SimTime {
        SimTime::from_ps(*self.ps.iter().min().expect("nonempty matrix"))
    }

    /// The loosest entry — how much run-ahead the most distant pair gets.
    pub fn max(&self) -> SimTime {
        SimTime::from_ps(*self.ps.iter().max().expect("nonempty matrix"))
    }
}

/// Spins briefly, then yields — the coordinator's wait for workers that
/// are actively executing an epoch (they finish in microseconds).
#[inline]
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins < 1 << 14 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Spins before an idle worker starts yielding.
const IDLE_SPIN_LIMIT: u32 = 1 << 12;
/// Yields before an idle worker parks.
const IDLE_YIELD_LIMIT: u32 = 64;
/// Park timeout: bounds the wake latency if an unpark is lost to the
/// publish race (the flag handshake below makes that rare), and bounds
/// idle wakeups to ~1 kHz while waiting for shutdown.
const IDLE_PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Shared coordination state between the coordinator and the workers.
struct Control<S> {
    /// Slot `i` holds shard `i`; workers own slots `1..`, the coordinator
    /// slot `0`. Locks are uncontended by construction: a worker holds
    /// its lock only while `epoch` says the shard is running, and the
    /// coordinator only touches worker slots between epochs.
    slots: Vec<Mutex<S>>,
    /// Monotone epoch sequence number; bumping it releases the workers.
    epoch: AtomicU64,
    /// Per-shard horizons of the epoch currently being executed, in ps.
    horizons_ps: Vec<AtomicU64>,
    /// Per-worker completion acknowledgements (last finished epoch).
    done: Vec<AtomicU64>,
    /// Events executed by each worker in its last epoch.
    ran: Vec<AtomicU64>,
    /// Whether each worker is (about to be) parked and needs an unpark.
    parked: Vec<AtomicBool>,
    shutdown: AtomicBool,
}

/// A deterministic conservative-parallel driver over [`EpochWorld`]
/// shards. See the module docs for the synchronization argument.
pub struct ShardedEngine<S: EpochWorld> {
    ctl: Arc<Control<S>>,
    workers: Vec<JoinHandle<()>>,
    /// Worker thread handles for unparking, indexed like `ctl.done`.
    worker_threads: Vec<Thread>,
    matrix: LookaheadMatrix,
    /// Earliest staged-but-undelivered external input per shard, set by
    /// the caller between epochs; participates in that shard's floor.
    source_floors: Vec<Option<SimTime>>,
    /// Optional inclusive upper bound on every horizon (the caller's
    /// partition-invariant quantum boundary).
    cap: Option<SimTime>,
    /// Scratch: per-shard floors of the epoch being planned (ps;
    /// `u64::MAX` = no floor).
    floors_ps: Vec<u64>,
    /// Per-shard horizons of the last executed epoch.
    horizons: Vec<SimTime>,
    epochs: u64,
    /// Highest horizon of the last executed epoch.
    horizon: SimTime,
}

impl<S: EpochWorld> ShardedEngine<S> {
    /// Builds an engine with the scalar lookahead — every pair bounded by
    /// the same `lookahead`, the maximally pessimistic (but always safe)
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `lookahead` is zero.
    pub fn new(shards: Vec<S>, lookahead: SimTime) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let matrix = LookaheadMatrix::uniform(shards.len(), lookahead);
        ShardedEngine::with_matrix(shards, matrix)
    }

    /// Builds an engine over `shards` with a per-pair lookahead matrix,
    /// spawning `shards.len() - 1` worker threads (shard 0 runs on the
    /// calling thread).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the matrix's shard count does not
    /// match.
    pub fn with_matrix(shards: Vec<S>, matrix: LookaheadMatrix) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert_eq!(
            matrix.shards(),
            shards.len(),
            "lookahead matrix must cover every shard"
        );
        let n = shards.len();
        let ctl = Arc::new(Control {
            slots: shards.into_iter().map(Mutex::new).collect(),
            epoch: AtomicU64::new(0),
            horizons_ps: (0..n).map(|_| AtomicU64::new(0)).collect(),
            done: (0..n.saturating_sub(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            ran: (0..n.saturating_sub(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            parked: (0..n.saturating_sub(1))
                .map(|_| AtomicBool::new(false))
                .collect(),
            shutdown: AtomicBool::new(false),
        });
        let workers: Vec<JoinHandle<()>> = (1..n)
            .map(|i| {
                let ctl = Arc::clone(&ctl);
                std::thread::Builder::new()
                    .name(format!("sonuma-shard-{i}"))
                    .spawn(move || worker_loop(&ctl, i))
                    .expect("spawn shard worker")
            })
            .collect();
        let worker_threads = workers.iter().map(|h| h.thread().clone()).collect();
        ShardedEngine {
            ctl,
            workers,
            worker_threads,
            matrix,
            source_floors: vec![None; n],
            cap: None,
            floors_ps: vec![u64::MAX; n],
            horizons: vec![SimTime::ZERO; n],
            epochs: 0,
            horizon: SimTime::ZERO,
        }
    }

    /// Number of shards (== executing threads).
    pub fn num_shards(&self) -> usize {
        self.ctl.slots.len()
    }

    /// The tightest pairwise lookahead — the scalar epoch width the
    /// matrix sharpens (and equals, under a uniform matrix).
    pub fn lookahead(&self) -> SimTime {
        self.matrix.min()
    }

    /// The per-pair lookahead matrix.
    pub fn matrix(&self) -> &LookaheadMatrix {
        &self.matrix
    }

    /// Epochs executed so far. Partition-*dependent*: per-destination
    /// horizons are shaped by the lookahead matrix, so equivalent runs at
    /// different shard counts may batch the same events into different
    /// epoch structures (only quantum boundaries are invariant).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The highest per-shard boundary of the last completed epoch.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// The lowest per-shard boundary of the last completed epoch — the
    /// caller's commit frontier: every shard has fully executed
    /// `[.., min_horizon]`, so staged traffic injected at or before it is
    /// final.
    pub fn min_horizon(&self) -> SimTime {
        *self.horizons.iter().min().expect("nonempty horizons")
    }

    /// The boundary shard `i` was advanced to by the last epoch.
    pub fn shard_horizon(&self, i: usize) -> SimTime {
        self.horizons[i]
    }

    /// Publishes the earliest staged-but-undelivered external input bound
    /// for shard `shard` (or `None` when its staging is empty). The value
    /// joins the shard's next-event floor when computing every shard's
    /// next horizon: staged traffic is work the shard will do, just not
    /// scheduled yet.
    pub fn set_source_floor(&mut self, shard: usize, floor: Option<SimTime>) {
        self.source_floors[shard] = floor;
    }

    /// Caps every horizon at `cap` (inclusive). Callers use this to stop
    /// epochs at a partition-invariant boundary they align all clocks to;
    /// `None` removes the cap.
    pub fn set_cap(&mut self, cap: Option<SimTime>) {
        self.cap = cap;
    }

    /// Aligns every shard's clock forward to `to` (per-shard no-op when
    /// already past it).
    pub fn align_all(&mut self, to: SimTime) {
        self.for_each_shard(|_, s| s.align_clock(to));
    }

    /// Runs `f` with exclusive access to shard `i`. Must only be called
    /// between epochs (never concurrently with [`ShardedEngine::run_epoch`]),
    /// which the `&mut self` receiver enforces.
    pub fn with_shard<R>(&mut self, i: usize, f: impl FnOnce(&mut S) -> R) -> R {
        let mut guard = self.ctl.slots[i].lock().expect("shard poisoned");
        f(&mut guard)
    }

    /// Runs `f` with read access to shard `i`. Workers only hold a
    /// shard's lock while an epoch is executing, and epochs only execute
    /// inside [`ShardedEngine::run_epoch`], so between epochs this is an
    /// uncontended lock — it exists so `&self` statistics queries don't
    /// need exclusive access to the whole engine.
    pub fn peek_shard<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        let guard = self.ctl.slots[i].lock().expect("shard poisoned");
        f(&guard)
    }

    /// Runs `f` over every shard in index order.
    pub fn for_each_shard(&mut self, mut f: impl FnMut(usize, &mut S)) {
        for i in 0..self.ctl.slots.len() {
            let mut guard = self.ctl.slots[i].lock().expect("shard poisoned");
            f(i, &mut guard);
        }
    }

    /// Executes one epoch: gathers per-shard floors (earliest pending
    /// event, merged with the caller-published source floor), computes
    /// every shard's horizon from the lookahead matrix, runs all shards
    /// to their horizons in parallel, aligns each clock to its horizon,
    /// and returns the number of events executed.
    ///
    /// Returns 0 without running when no shard has a floor. Note that
    /// with source floors set, a return of 0 does *not* mean the system
    /// is drained — staged traffic may still need committing; the machine
    /// layer's quantum loop terminates on "nothing ran, nothing staged,
    /// nothing committed".
    ///
    /// A shard's horizon may be below its clock when a previously empty
    /// peer gained a floor since the last epoch; running and aligning are
    /// both no-ops then, and conservative safety is unaffected (delivery
    /// bounds derive from node-level hop distances, which satisfy the
    /// triangle inequality).
    pub fn run_epoch(&mut self) -> u64 {
        let n = self.ctl.slots.len();
        // Per-shard floors; all locks are free here.
        let mut any = false;
        for i in 0..n {
            let next = self.ctl.slots[i]
                .lock()
                .expect("shard poisoned")
                .next_event_time();
            let floor = match (next, self.source_floors[i]) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            self.floors_ps[i] = floor.map_or(u64::MAX, SimTime::as_ps);
            any |= floor.is_some();
        }
        if !any {
            return 0;
        }
        // Every epoch window is half-open; horizons are inclusive, hence
        // the - 1 ps.
        let cap_ps = self.cap.map_or(u64::MAX, SimTime::as_ps);
        for d in 0..n {
            let h = self.matrix.horizon_ps(d, &self.floors_ps).min(cap_ps);
            self.horizons[d] = SimTime::from_ps(h);
            self.ctl.horizons_ps[d].store(h, Ordering::Relaxed);
        }

        let mut total = 0u64;
        if n == 1 {
            let mut shard = self.ctl.slots[0].lock().expect("shard poisoned");
            total += shard.run_epoch(self.horizons[0]);
            shard.align_clock(self.horizons[0]);
        } else {
            let seq = self.ctl.epoch.load(Ordering::Relaxed) + 1;
            // Release the workers (the store publishes the horizons);
            // SeqCst pairs with the park handshake in `worker_loop`.
            self.ctl.epoch.store(seq, Ordering::SeqCst);
            for (w, parked) in self.ctl.parked.iter().enumerate() {
                if parked.load(Ordering::SeqCst) {
                    self.worker_threads[w].unpark();
                }
            }
            // Shard 0 runs on this thread while the workers run theirs.
            {
                let mut shard = self.ctl.slots[0].lock().expect("shard poisoned");
                total += shard.run_epoch(self.horizons[0]);
                shard.align_clock(self.horizons[0]);
            }
            for (i, done) in self.ctl.done.iter().enumerate() {
                let mut spins = 0;
                while done.load(Ordering::Acquire) != seq {
                    relax(&mut spins);
                }
                total += self.ctl.ran[i].load(Ordering::Relaxed);
            }
        }
        self.epochs += 1;
        self.horizon = *self.horizons.iter().max().expect("nonempty horizons");
        total
    }
}

fn worker_loop<S: EpochWorld>(ctl: &Control<S>, index: usize) {
    let worker = index - 1;
    let mut last = 0u64;
    let mut spins = 0u32;
    loop {
        let seq = ctl.epoch.load(Ordering::Acquire);
        if seq == last {
            if ctl.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Idle: spin briefly (the next epoch usually arrives within
            // microseconds), degrade to yielding, then park. The parked
            // flag is raised *before* re-checking `epoch`, and the
            // coordinator stores `epoch` *before* reading the flags (both
            // SeqCst), so either the worker sees the new epoch or the
            // coordinator sees the flag and unparks — a lost wakeup needs
            // both to miss, which the ordering forbids; the timeout is
            // belt-and-braces and bounds shutdown latency.
            spins += 1;
            if spins < IDLE_SPIN_LIMIT {
                std::hint::spin_loop();
            } else if spins < IDLE_SPIN_LIMIT + IDLE_YIELD_LIMIT {
                std::thread::yield_now();
            } else {
                ctl.parked[worker].store(true, Ordering::SeqCst);
                if ctl.epoch.load(Ordering::SeqCst) == last && !ctl.shutdown.load(Ordering::SeqCst)
                {
                    std::thread::park_timeout(IDLE_PARK_TIMEOUT);
                }
                ctl.parked[worker].store(false, Ordering::SeqCst);
            }
            continue;
        }
        spins = 0;
        last = seq;
        let horizon = SimTime::from_ps(ctl.horizons_ps[index].load(Ordering::Relaxed));
        let ran = {
            let mut shard = ctl.slots[index].lock().expect("shard poisoned");
            let ran = shard.run_epoch(horizon);
            shard.align_clock(horizon);
            ran
        };
        ctl.ran[worker].store(ran, Ordering::Relaxed);
        ctl.done[worker].store(seq, Ordering::Release);
    }
}

impl<S: EpochWorld> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        self.ctl.shutdown.store(true, Ordering::SeqCst);
        for thread in &self.worker_threads {
            thread.unpark();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<S: EpochWorld> std::fmt::Debug for ShardedEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.ctl.slots.len())
            .field("lookahead", &self.matrix.min())
            .field("epochs", &self.epochs)
            .field("horizon", &self.horizon)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventEngine, World};

    /// A minimal world: marks fire at their scheduled time and may chain.
    struct Trace {
        id: usize,
        fired: Vec<u64>,
    }

    enum Ev {
        Mark(u64),
        Chain { left: u32, step_ns: u64 },
    }

    impl World for Trace {
        type Event = Ev;
        fn handle(&mut self, engine: &mut EventEngine<Self>, event: Ev) {
            match event {
                Ev::Mark(tag) => self.fired.push(tag),
                Ev::Chain { left, step_ns } => {
                    self.fired.push(engine.now().as_ps());
                    if left > 0 {
                        engine.schedule_in(
                            SimTime::from_ns(step_ns),
                            Ev::Chain {
                                left: left - 1,
                                step_ns,
                            },
                        );
                    }
                }
            }
        }
    }

    struct Slot {
        world: Trace,
        engine: EventEngine<Trace>,
    }

    impl EpochWorld for Slot {
        fn run_epoch(&mut self, horizon: SimTime) -> u64 {
            self.engine.run_until(&mut self.world, horizon)
        }
        fn next_event_time(&mut self) -> Option<SimTime> {
            self.engine.next_time()
        }
        fn align_clock(&mut self, to: SimTime) {
            self.engine.advance_now_to(to);
        }
    }

    fn slot(id: usize) -> Slot {
        Slot {
            world: Trace {
                id,
                fired: Vec::new(),
            },
            engine: EventEngine::new(),
        }
    }

    #[test]
    fn epochs_advance_and_drain() {
        let mut shards: Vec<Slot> = (0..3).map(slot).collect();
        for (i, s) in shards.iter_mut().enumerate() {
            s.engine.schedule_at(
                SimTime::from_ns(10 * (i as u64 + 1)),
                Ev::Chain {
                    left: 4,
                    step_ns: 7,
                },
            );
        }
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(5));
        let mut total = 0;
        loop {
            let ran = engine.run_epoch();
            if ran == 0 {
                break;
            }
            total += ran;
        }
        assert_eq!(total, 15, "5 chained events per shard");
        engine.for_each_shard(|i, s| {
            assert_eq!(
                s.world.fired.len(),
                5,
                "shard {} fired all events",
                s.world.id
            );
            assert!(s.world.fired.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(i, s.world.id);
        });
    }

    #[test]
    fn epoch_count_is_shard_count_invariant() {
        // The same global event set must produce the same number of
        // epochs whether it lives in 1 shard or 4.
        let run = |nshards: usize| -> (u64, u64) {
            let mut shards: Vec<Slot> = (0..nshards).map(slot).collect();
            for k in 0..16u64 {
                shards[k as usize % nshards]
                    .engine
                    .schedule_at(SimTime::from_ns(3 * k), Ev::Mark(k));
            }
            let mut engine = ShardedEngine::new(shards, SimTime::from_ns(4));
            let mut events = 0;
            loop {
                let ran = engine.run_epoch();
                if ran == 0 {
                    break;
                }
                events += ran;
            }
            (events, engine.epochs())
        };
        let (e1, epochs1) = run(1);
        let (e4, epochs4) = run(4);
        assert_eq!(e1, 16);
        assert_eq!(e1, e4);
        assert_eq!(
            epochs1, epochs4,
            "epoch structure must not depend on sharding"
        );
    }

    #[test]
    fn clocks_align_to_the_horizon() {
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[0]
            .engine
            .schedule_at(SimTime::from_ns(100), Ev::Mark(0));
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(10));
        assert_eq!(engine.run_epoch(), 1);
        let horizon = engine.horizon();
        assert_eq!(horizon, SimTime::from_ps(100_000 + 10_000 - 1));
        assert_eq!(engine.min_horizon(), horizon, "uniform matrix: one bound");
        // Both shards — including the one that ran nothing — sit exactly
        // on the boundary.
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), horizon));
    }

    #[test]
    fn distant_shards_run_ahead_of_the_scalar_bound() {
        // Shard 1 is "far" from shard 0 (100 ns each way) but close to
        // itself (its own staged traffic round-trips in 100 ns too); with
        // only shard 1 holding events, its horizon is bounded by its own
        // pair entry, far past the scalar minimum.
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[1].engine.schedule_at(SimTime::ZERO, Ev::Mark(1));
        let la = |s: usize, d: usize| {
            if s == d {
                SimTime::from_ns(100)
            } else {
                SimTime::from_ns(10)
            }
        };
        let mut engine = ShardedEngine::with_matrix(shards, LookaheadMatrix::from_fn(2, la));
        assert_eq!(engine.matrix().min(), SimTime::from_ns(10));
        assert_eq!(engine.matrix().max(), SimTime::from_ns(100));
        assert_eq!(engine.run_epoch(), 1);
        // Shard 1's horizon: min(floor1 + la[1][1]) - 1 = 100 ns - 1 ps.
        assert_eq!(engine.shard_horizon(1), SimTime::from_ps(100_000 - 1));
        // Shard 0's horizon: min(floor1 + la[1][0]) - 1 = 10 ns - 1 ps —
        // it cannot outrun traffic shard 1 might send it.
        assert_eq!(engine.shard_horizon(0), SimTime::from_ps(10_000 - 1));
        assert_eq!(engine.min_horizon(), SimTime::from_ps(10_000 - 1));
        engine.peek_shard(0, |s| {
            assert_eq!(s.engine.now(), SimTime::from_ps(10_000 - 1))
        });
        engine.peek_shard(1, |s| {
            assert_eq!(s.engine.now(), SimTime::from_ps(100_000 - 1))
        });
    }

    #[test]
    fn source_floors_constrain_horizons() {
        // Shard 0 has no local events but 50 ns of staged input; shard 1's
        // event sits at 200 ns. Horizons must respect the staged floor.
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[1]
            .engine
            .schedule_at(SimTime::from_ns(200), Ev::Mark(0));
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(10));
        engine.set_source_floor(0, Some(SimTime::from_ns(50)));
        let ran = engine.run_epoch();
        assert_eq!(ran, 0, "nothing executable below the horizon");
        assert_eq!(engine.epochs(), 1);
        // Both horizons: min(50 + 10, 200 + 10) - 1.
        assert_eq!(engine.min_horizon(), SimTime::from_ps(60_000 - 1));
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), SimTime::from_ps(60_000 - 1)));
        // Clearing the floor lets the 200 ns event bound the next epoch.
        engine.set_source_floor(0, None);
        assert_eq!(engine.run_epoch(), 1);
        assert_eq!(engine.min_horizon(), SimTime::from_ps(210_000 - 1));
    }

    #[test]
    fn cap_bounds_every_horizon() {
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[0].engine.schedule_at(SimTime::ZERO, Ev::Mark(0));
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(100));
        engine.set_cap(Some(SimTime::from_ns(30)));
        assert_eq!(engine.run_epoch(), 1);
        assert_eq!(engine.horizon(), SimTime::from_ns(30));
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), SimTime::from_ns(30)));
        engine.set_cap(None);
        engine.align_all(SimTime::from_ns(40));
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), SimTime::from_ns(40)));
    }

    #[test]
    fn uniform_matrix_matches_scalar_engine_epochs() {
        // A from_fn matrix with constant entries must behave exactly like
        // the scalar constructor: same epoch count, same horizons.
        let build = |uniform: bool| -> (u64, SimTime) {
            let mut shards: Vec<Slot> = (0..3).map(slot).collect();
            for k in 0..9u64 {
                shards[k as usize % 3]
                    .engine
                    .schedule_at(SimTime::from_ns(5 * k), Ev::Mark(k));
            }
            let mut engine = if uniform {
                ShardedEngine::new(shards, SimTime::from_ns(7))
            } else {
                ShardedEngine::with_matrix(
                    shards,
                    LookaheadMatrix::from_fn(3, |_, _| SimTime::from_ns(7)),
                )
            };
            while engine.run_epoch() > 0 {}
            (engine.epochs(), engine.horizon())
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn parked_workers_wake_for_the_next_epoch() {
        // Long enough between epochs that workers walk the whole idle
        // ladder (spin, yield, park); the next epoch must still run.
        let mut shards: Vec<Slot> = (0..3).map(slot).collect();
        for s in shards.iter_mut() {
            s.engine.schedule_at(SimTime::from_ns(1), Ev::Mark(0));
            s.engine.schedule_at(SimTime::from_ns(500), Ev::Mark(1));
        }
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(4));
        assert_eq!(engine.run_epoch(), 3);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(engine.run_epoch(), 3, "parked workers must wake and run");
        engine.for_each_shard(|_, s| assert_eq!(s.world.fired.len(), 2));
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_panics() {
        let _ = ShardedEngine::new(vec![slot(0)], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "must cover every shard")]
    fn mismatched_matrix_panics() {
        let _ = ShardedEngine::with_matrix(
            vec![slot(0)],
            LookaheadMatrix::uniform(2, SimTime::from_ns(1)),
        );
    }
}
