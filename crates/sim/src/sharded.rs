//! Conservative-parallel execution: shards advancing in lookahead-bounded
//! epochs.
//!
//! [`ShardedEngine`] runs `N` shard worlds — each an independent
//! discrete-event simulation over its own slice of state — in lockstep
//! *epochs*. An epoch spans `[start, start + lookahead)`, where `start` is
//! the globally earliest pending event and `lookahead` is the minimum
//! latency of any cross-shard interaction (for the soNUMA fabric: one hop
//! plus the serialization of the smallest packet). Within an epoch every
//! shard executes its local events concurrently; cross-shard effects are
//! staged by the worlds and exchanged by the *caller* between epochs, and
//! by construction they can only land at or after the next epoch — the
//! classic conservative (no-rollback) synchronization argument.
//!
//! Determinism is the point: the epoch boundaries are a pure function of
//! event timestamps and the lookahead, never of host thread scheduling,
//! so a run's event interleaving — and therefore its results — is
//! bit-identical for any shard count, provided the caller's exchange step
//! merges staged traffic in a partition-independent order (see
//! `sonuma-machine`'s `ShardedCluster` for the fabric merge that does
//! this).
//!
//! Shards execute on a pool of persistent worker threads that spin-wait
//! between epochs (epochs are short — tens of nanoseconds of simulated
//! time — so futex sleep/wake latency would dominate; the spin degrades
//! to `yield_now` so an oversubscribed host still makes progress). Shard
//! 0 always runs on the coordinating thread, so a `threads = N` run uses
//! exactly `N` OS threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::time::SimTime;

/// One shard of a sharded simulation: everything [`ShardedEngine`] needs
/// to drive it through epochs.
///
/// Implementations bundle a world and its event engine. `Send` is
/// required because shards execute on pool threads.
pub trait EpochWorld: Send + 'static {
    /// Executes every pending local event with `time <= horizon`; returns
    /// the number executed.
    fn run_epoch(&mut self, horizon: SimTime) -> u64;

    /// Timestamp of the earliest pending local event, if any.
    fn next_event_time(&mut self) -> Option<SimTime>;

    /// Aligns the shard's clock to the epoch boundary `to` (which is at
    /// or after every event executed so far, and before every pending
    /// one). After the barrier all shards agree on "now", so work
    /// injected from outside the simulation — posts, polls — charges
    /// from a partition-invariant time.
    fn align_clock(&mut self, to: SimTime);
}

/// Spins briefly, then yields: epochs are microseconds of host time, so
/// waiting threads usually find work before ever yielding.
#[inline]
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins < 1 << 14 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Shared coordination state between the coordinator and the workers.
struct Control<S> {
    /// Slot `i` holds shard `i`; workers own slots `1..`, the coordinator
    /// slot `0`. Locks are uncontended by construction: a worker holds
    /// its lock only while `epoch` says the shard is running, and the
    /// coordinator only touches worker slots between epochs.
    slots: Vec<Mutex<S>>,
    /// Monotone epoch sequence number; bumping it releases the workers.
    epoch: AtomicU64,
    /// Horizon of the epoch currently being executed, in ps.
    horizon_ps: AtomicU64,
    /// Per-worker completion acknowledgements (last finished epoch).
    done: Vec<AtomicU64>,
    /// Events executed by each worker in its last epoch.
    ran: Vec<AtomicU64>,
    shutdown: AtomicBool,
}

/// A deterministic conservative-parallel driver over [`EpochWorld`]
/// shards. See the module docs for the synchronization argument.
pub struct ShardedEngine<S: EpochWorld> {
    ctl: Arc<Control<S>>,
    workers: Vec<JoinHandle<()>>,
    lookahead: SimTime,
    epochs: u64,
    /// Boundary of the last completed epoch — the global clock every
    /// shard is aligned to.
    horizon: SimTime,
}

impl<S: EpochWorld> ShardedEngine<S> {
    /// Builds an engine over `shards`, spawning `shards.len() - 1`
    /// worker threads (shard 0 runs on the calling thread).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `lookahead` is zero — a zero
    /// lookahead admits no epoch in which concurrency is safe.
    pub fn new(shards: Vec<S>, lookahead: SimTime) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(
            lookahead > SimTime::ZERO,
            "conservative execution requires a positive lookahead"
        );
        let n = shards.len();
        let ctl = Arc::new(Control {
            slots: shards.into_iter().map(Mutex::new).collect(),
            epoch: AtomicU64::new(0),
            horizon_ps: AtomicU64::new(0),
            done: (0..n.saturating_sub(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            ran: (0..n.saturating_sub(1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..n)
            .map(|i| {
                let ctl = Arc::clone(&ctl);
                std::thread::Builder::new()
                    .name(format!("sonuma-shard-{i}"))
                    .spawn(move || worker_loop(&ctl, i))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardedEngine {
            ctl,
            workers,
            lookahead,
            epochs: 0,
            horizon: SimTime::ZERO,
        }
    }

    /// Number of shards (== executing threads).
    pub fn num_shards(&self) -> usize {
        self.ctl.slots.len()
    }

    /// The configured lookahead (epoch width).
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// Epochs executed so far. A pure function of the event structure —
    /// identical across shard counts for equivalent runs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The boundary of the last completed epoch: the global clock.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Runs `f` with exclusive access to shard `i`. Must only be called
    /// between epochs (never concurrently with [`ShardedEngine::run_epoch`]),
    /// which the `&mut self` receiver enforces.
    pub fn with_shard<R>(&mut self, i: usize, f: impl FnOnce(&mut S) -> R) -> R {
        let mut guard = self.ctl.slots[i].lock().expect("shard poisoned");
        f(&mut guard)
    }

    /// Runs `f` with read access to shard `i`. Workers only hold a
    /// shard's lock while an epoch is executing, and epochs only execute
    /// inside [`ShardedEngine::run_epoch`], so between epochs this is an
    /// uncontended lock — it exists so `&self` statistics queries don't
    /// need exclusive access to the whole engine.
    pub fn peek_shard<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        let guard = self.ctl.slots[i].lock().expect("shard poisoned");
        f(&guard)
    }

    /// Runs `f` over every shard in index order.
    pub fn for_each_shard(&mut self, mut f: impl FnMut(usize, &mut S)) {
        for i in 0..self.ctl.slots.len() {
            let mut guard = self.ctl.slots[i].lock().expect("shard poisoned");
            f(i, &mut guard);
        }
    }

    /// Executes one epoch: finds the globally earliest pending event,
    /// runs every shard through `[start, start + lookahead)` in parallel,
    /// aligns all clocks to the epoch boundary, and returns the number of
    /// events executed (0 when every shard is drained).
    ///
    /// The caller exchanges staged cross-shard traffic after each epoch;
    /// anything it schedules must land strictly after the returned-to
    /// horizon, which the lookahead guarantees for conforming worlds.
    pub fn run_epoch(&mut self) -> u64 {
        let n = self.ctl.slots.len();
        // Globally earliest pending event; all locks are free here.
        let mut start: Option<SimTime> = None;
        for i in 0..n {
            let next = self.ctl.slots[i]
                .lock()
                .expect("shard poisoned")
                .next_event_time();
            start = match (start, next) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let Some(start) = start else {
            return 0;
        };
        // The epoch window is [start, start + lookahead); run_epoch's
        // horizon is inclusive, hence the - 1 ps.
        let horizon = SimTime::from_ps(
            start
                .as_ps()
                .saturating_add(self.lookahead.as_ps())
                .saturating_sub(1),
        );

        let mut total = 0u64;
        if n == 1 {
            let mut shard = self.ctl.slots[0].lock().expect("shard poisoned");
            total += shard.run_epoch(horizon);
            shard.align_clock(horizon);
        } else {
            let seq = self.ctl.epoch.load(Ordering::Relaxed) + 1;
            self.ctl
                .horizon_ps
                .store(horizon.as_ps(), Ordering::Relaxed);
            // Release the workers (the store publishes the horizon).
            self.ctl.epoch.store(seq, Ordering::Release);
            // Shard 0 runs on this thread while the workers run theirs.
            {
                let mut shard = self.ctl.slots[0].lock().expect("shard poisoned");
                total += shard.run_epoch(horizon);
                shard.align_clock(horizon);
            }
            for (i, done) in self.ctl.done.iter().enumerate() {
                let mut spins = 0;
                while done.load(Ordering::Acquire) != seq {
                    relax(&mut spins);
                }
                total += self.ctl.ran[i].load(Ordering::Relaxed);
            }
        }
        self.epochs += 1;
        self.horizon = horizon;
        total
    }
}

fn worker_loop<S: EpochWorld>(ctl: &Control<S>, index: usize) {
    let worker = index - 1;
    let mut last = 0u64;
    let mut spins = 0u32;
    loop {
        let seq = ctl.epoch.load(Ordering::Acquire);
        if seq == last {
            if ctl.shutdown.load(Ordering::Acquire) {
                return;
            }
            relax(&mut spins);
            continue;
        }
        spins = 0;
        last = seq;
        let horizon = SimTime::from_ps(ctl.horizon_ps.load(Ordering::Relaxed));
        let ran = {
            let mut shard = ctl.slots[index].lock().expect("shard poisoned");
            let ran = shard.run_epoch(horizon);
            shard.align_clock(horizon);
            ran
        };
        ctl.ran[worker].store(ran, Ordering::Relaxed);
        ctl.done[worker].store(seq, Ordering::Release);
    }
}

impl<S: EpochWorld> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        self.ctl.shutdown.store(true, Ordering::Release);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<S: EpochWorld> std::fmt::Debug for ShardedEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.ctl.slots.len())
            .field("lookahead", &self.lookahead)
            .field("epochs", &self.epochs)
            .field("horizon", &self.horizon)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventEngine, World};

    /// A minimal world: marks fire at their scheduled time and may chain.
    struct Trace {
        id: usize,
        fired: Vec<u64>,
    }

    enum Ev {
        Mark(u64),
        Chain { left: u32, step_ns: u64 },
    }

    impl World for Trace {
        type Event = Ev;
        fn handle(&mut self, engine: &mut EventEngine<Self>, event: Ev) {
            match event {
                Ev::Mark(tag) => self.fired.push(tag),
                Ev::Chain { left, step_ns } => {
                    self.fired.push(engine.now().as_ps());
                    if left > 0 {
                        engine.schedule_in(
                            SimTime::from_ns(step_ns),
                            Ev::Chain {
                                left: left - 1,
                                step_ns,
                            },
                        );
                    }
                }
            }
        }
    }

    struct Slot {
        world: Trace,
        engine: EventEngine<Trace>,
    }

    impl EpochWorld for Slot {
        fn run_epoch(&mut self, horizon: SimTime) -> u64 {
            self.engine.run_until(&mut self.world, horizon)
        }
        fn next_event_time(&mut self) -> Option<SimTime> {
            self.engine.next_time()
        }
        fn align_clock(&mut self, to: SimTime) {
            self.engine.advance_now_to(to);
        }
    }

    fn slot(id: usize) -> Slot {
        Slot {
            world: Trace {
                id,
                fired: Vec::new(),
            },
            engine: EventEngine::new(),
        }
    }

    #[test]
    fn epochs_advance_and_drain() {
        let mut shards: Vec<Slot> = (0..3).map(slot).collect();
        for (i, s) in shards.iter_mut().enumerate() {
            s.engine.schedule_at(
                SimTime::from_ns(10 * (i as u64 + 1)),
                Ev::Chain {
                    left: 4,
                    step_ns: 7,
                },
            );
        }
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(5));
        let mut total = 0;
        loop {
            let ran = engine.run_epoch();
            if ran == 0 {
                break;
            }
            total += ran;
        }
        assert_eq!(total, 15, "5 chained events per shard");
        engine.for_each_shard(|i, s| {
            assert_eq!(
                s.world.fired.len(),
                5,
                "shard {} fired all events",
                s.world.id
            );
            assert!(s.world.fired.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(i, s.world.id);
        });
    }

    #[test]
    fn epoch_count_is_shard_count_invariant() {
        // The same global event set must produce the same number of
        // epochs whether it lives in 1 shard or 4.
        let run = |nshards: usize| -> (u64, u64) {
            let mut shards: Vec<Slot> = (0..nshards).map(slot).collect();
            for k in 0..16u64 {
                shards[k as usize % nshards]
                    .engine
                    .schedule_at(SimTime::from_ns(3 * k), Ev::Mark(k));
            }
            let mut engine = ShardedEngine::new(shards, SimTime::from_ns(4));
            let mut events = 0;
            loop {
                let ran = engine.run_epoch();
                if ran == 0 {
                    break;
                }
                events += ran;
            }
            (events, engine.epochs())
        };
        let (e1, epochs1) = run(1);
        let (e4, epochs4) = run(4);
        assert_eq!(e1, 16);
        assert_eq!(e1, e4);
        assert_eq!(
            epochs1, epochs4,
            "epoch structure must not depend on sharding"
        );
    }

    #[test]
    fn clocks_align_to_the_horizon() {
        let mut shards: Vec<Slot> = (0..2).map(slot).collect();
        shards[0]
            .engine
            .schedule_at(SimTime::from_ns(100), Ev::Mark(0));
        let mut engine = ShardedEngine::new(shards, SimTime::from_ns(10));
        assert_eq!(engine.run_epoch(), 1);
        let horizon = engine.horizon();
        assert_eq!(horizon, SimTime::from_ps(100_000 + 10_000 - 1));
        // Both shards — including the one that ran nothing — sit exactly
        // on the boundary.
        engine.for_each_shard(|_, s| assert_eq!(s.engine.now(), horizon));
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_panics() {
        let _ = ShardedEngine::new(vec![slot(0)], SimTime::ZERO);
    }
}
