//! Schedule/dispatch throughput: typed arena-backed `EventEngine` versus
//! the legacy boxed-closure `Engine`, at 1k / 100k / 1M queued events.
//!
//! Each benchmark schedules N events at pseudorandom times (xorshift over
//! a 50 µs-per-1k-events window, so queue density is comparable across
//! sizes), then drains the queue; the measured body covers both schedule
//! and dispatch. Runs offline through the in-repo criterion shim:
//!
//! ```text
//! cargo bench -p sonuma-sim --bench engine
//! ```
//!
//! The acceptance bar for the typed engine is >= 2x events/sec over the
//! boxed engine at 100k queued events.

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_sim::{Engine, EventEngine, SimTime, World};

/// The typed world: accumulates event payloads.
struct Count {
    hits: u64,
    sum: u64,
}

/// Events carry a payload, exactly like the machine's `ClusterEvent`
/// variants carry node/core/packet state — which is also what forces the
/// boxed engine below to really allocate (a captureless closure would be
/// zero-sized and `Box::new` would never touch the heap).
enum Tick {
    Hit(u64),
}

impl World for Count {
    type Event = Tick;
    fn handle(&mut self, _engine: &mut EventEngine<Self>, event: Tick) {
        let Tick::Hit(id) = event;
        self.hits += 1;
        self.sum = self.sum.wrapping_add(id);
    }
}

/// Deterministic pseudorandom event time for index `i` of an `n`-event
/// run: xorshift spread over ~50 µs per 1k events.
fn time_of(seed: &mut u64, n: u64) -> SimTime {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    SimTime::from_ps(*seed % (n * 50_000))
}

fn typed_run(n: u64) -> u64 {
    let mut engine = EventEngine::new();
    let mut world = Count { hits: 0, sum: 0 };
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    for id in 0..n {
        engine.schedule_at(time_of(&mut seed, n), Tick::Hit(id));
    }
    engine.run(&mut world);
    assert_eq!(world.hits, n);
    world.sum
}

fn boxed_run(n: u64) -> u64 {
    let mut engine: Engine<(u64, u64)> = Engine::new();
    let mut world = (0u64, 0u64); // (hits, sum)
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    for id in 0..n {
        engine.schedule_at(time_of(&mut seed, n), move |w: &mut (u64, u64), _| {
            w.0 += 1;
            w.1 = w.1.wrapping_add(id);
        });
    }
    engine.run(&mut world);
    assert_eq!(world.0, n);
    world.1
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(5);
    for n in [1_000u64, 100_000, 1_000_000] {
        group.bench_function(&format!("typed/{n}"), |b| b.iter(|| typed_run(n)));
        group.bench_function(&format!("boxed/{n}"), |b| b.iter(|| boxed_run(n)));
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
