//! `ShardedEngine` epoch overhead: empty-epoch barrier cost and chained
//! epoch throughput with and without speculative run-ahead, at 1 / 4 / 8
//! shards. Runs offline through the in-repo criterion shim:
//!
//! ```text
//! cargo bench -p sonuma-sim --bench sharded
//! ```
//!
//! `empty/{n}` releases and re-joins the worker pool with zero events —
//! the pure per-epoch synchronization tax a conservative engine pays for
//! every scalar lookahead. `chain/{n}/k{K}` drains a fixed event chain
//! whose step is five lookaheads, so most epochs are commit-traffic-free:
//! the configuration speculative run-ahead (`K > 0`) exists to
//! accelerate. The companion commit-merge bench lives in
//! `crates/machine/benches/` where the k-way merge is implemented.

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_sim::{EpochWorld, ShardedEngine, SimTime};

/// A shard holding one arithmetic chain of events: event `i` fires at
/// `start + i * step`. Mirrors the engine's unit-test world but without
/// cross-shard traffic, isolating pure epoch overhead.
struct ChainShard {
    now: SimTime,
    next: Option<SimTime>,
    step: SimTime,
    remaining: u64,
    executed: u64,
    saved: Option<SimTime>,
}

impl ChainShard {
    fn new(start: SimTime, step: SimTime, events: u64) -> ChainShard {
        ChainShard {
            now: SimTime::ZERO,
            next: (events > 0).then_some(start),
            step,
            remaining: events,
            executed: 0,
            saved: None,
        }
    }
}

impl EpochWorld for ChainShard {
    fn run_epoch(&mut self, horizon: SimTime) -> u64 {
        let mut ran = 0;
        while let Some(t) = self.next {
            if t > horizon {
                break;
            }
            self.now = t;
            self.executed += 1;
            self.remaining -= 1;
            self.next = (self.remaining > 0).then(|| t + self.step);
            ran += 1;
        }
        ran
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.next
    }

    fn align_clock(&mut self, to: SimTime) {
        if to > self.now {
            self.now = to;
        }
    }

    fn snapshot(&mut self) {
        self.saved = Some(self.now);
    }

    fn restore(&mut self) {
        self.now = self.saved.take().expect("restore without snapshot");
    }
}

/// One empty epoch: horizons derive from the caller-published source
/// floors, the pool releases and re-joins, zero events execute.
fn empty_epoch(engine: &mut ShardedEngine<ChainShard>, floor: &mut u64) -> u64 {
    *floor += 1_000;
    for s in 0..engine.num_shards() {
        engine.set_source_floor(s, Some(SimTime::from_ps(*floor)));
    }
    engine.run_epoch()
}

/// Drains `events` chained events per shard under speculation depth `k`
/// and returns the epoch (barrier) count it took.
fn chain_run(nshards: usize, k: u32, events: u64) -> u64 {
    let shards = (0..nshards)
        .map(|_| ChainShard::new(SimTime::from_ns(5), SimTime::from_ns(5), events))
        .collect();
    let mut engine = ShardedEngine::new(shards, SimTime::from_ns(1));
    engine.set_speculation(k);
    let mut total = 0;
    loop {
        let ran = engine.run_epoch();
        total += ran;
        if ran == 0 {
            break;
        }
    }
    assert_eq!(total, events * nshards as u64, "chain not fully drained");
    engine.epochs()
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);
    for n in [1usize, 4, 8] {
        let shards = (0..n)
            .map(|_| ChainShard::new(SimTime::ZERO, SimTime::ZERO, 0))
            .collect();
        let mut engine: ShardedEngine<ChainShard> = ShardedEngine::new(shards, SimTime::from_ns(1));
        let mut floor = 0u64;
        group.bench_function(&format!("empty/{n}"), |b| {
            b.iter(|| empty_epoch(&mut engine, &mut floor))
        });
    }
    for n in [1usize, 4, 8] {
        for k in [0u32, 2] {
            group.bench_function(&format!("chain/{n}/k{k}"), |b| {
                b.iter(|| chain_run(n, k, 256))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
