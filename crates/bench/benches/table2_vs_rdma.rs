//! Criterion wrapper for Table 2: prints the three-way comparison, then
//! benchmarks the full comparison pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_bench::table2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cols = table2::run();
    table2::print(&cols);

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("full_comparison", |b| b.iter(|| black_box(table2::run())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
