//! Criterion wrapper for Figure 9: prints the PageRank speedup panels,
//! then benchmarks a small multi-node superstep.

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_apps::graph::{Graph, GraphConfig};
use sonuma_apps::pagerank::{self, PagerankConfig, Variant};
use std::hint::black_box;
use std::rc::Rc;

fn bench(c: &mut Criterion) {
    // Smaller sweep than gen-figures so `cargo bench` stays responsive;
    // run `gen-figures fig9` for the full panels.
    let left = sonuma_bench::fig09::run(8192, &[2, 4, 8], false);
    sonuma_bench::fig09::print("Figure 9 (left): PageRank speedup, sim'd HW", &left);
    let right = sonuma_bench::fig09::run(4096, &[2, 4, 8, 16], true);
    sonuma_bench::fig09::print("Figure 9 (right): PageRank speedup, dev platform", &right);

    let graph = Rc::new(Graph::rmat(&GraphConfig::social(2048, 9)));
    let cfg = PagerankConfig::default();
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("bulk_superstep_4nodes", |b| {
        b.iter(|| black_box(pagerank::run(Variant::Bulk, 4, &graph, &cfg).total_time))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
