//! Criterion wrapper for Figure 1: prints the Netpipe/TCP sweep, then
//! benchmarks the model evaluation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = sonuma_bench::fig01::run();
    sonuma_bench::fig01::print(&rows);
    sonuma_bench::fig01::check(&rows);

    let mut g = c.benchmark_group("fig01");
    g.sample_size(20);
    g.bench_function("netpipe_sweep", |b| {
        b.iter(|| black_box(sonuma_bench::fig01::run()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
