//! Criterion wrapper for the RMC design-point ablations (§4.3, §8).

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_bench::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    ablations::print("CT$", &ablations::ct_cache());
    ablations::print("MAQ depth", &ablations::maq_depth());
    ablations::print("unroll initiation interval", &ablations::unroll_interval());
    ablations::print("fabric topology", &ablations::topology());
    ablations::print("WQ poll cadence", &ablations::poll_interval());

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("ct_cache_sweep", |b| {
        b.iter(|| black_box(ablations::ct_cache()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
