//! Criterion wrapper for Figure 7: prints the remote-read latency and
//! bandwidth sweeps on both platforms, then benchmarks representative
//! single points (simulator wall-clock regression tracking).

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_bench::fig07::{self, Platform};
use sonuma_bench::workloads::{run_async_read, run_sync_read, READ_REGION_BYTES};
use sonuma_core::SystemBuilder;
use std::hint::black_box;

fn system() -> sonuma_core::SonumaSystem {
    SystemBuilder::simulated_hardware(2)
        .segment_len(READ_REGION_BYTES + 4096)
        .build()
}

fn bench(c: &mut Criterion) {
    let lat_hw = fig07::latency(Platform::SimulatedHardware);
    fig07::print_latency(Platform::SimulatedHardware, &lat_hw);
    let bw = fig07::bandwidth(Platform::SimulatedHardware);
    fig07::print_bandwidth(&bw);
    let lat_dev = fig07::latency(Platform::DevPlatform);
    fig07::print_latency(Platform::DevPlatform, &lat_dev);

    let mut g = c.benchmark_group("fig07");
    g.sample_size(10);
    g.bench_function("sync_read_64B", |b| {
        b.iter(|| black_box(run_sync_read(&mut system(), 64, false)))
    });
    g.bench_function("async_read_stream_8KB", |b| {
        b.iter(|| black_box(run_async_read(&mut system(), 8192, false)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
