//! Criterion wrapper for Figure 8: prints the send/receive latency and
//! bandwidth sweeps (thresholds 0 / infinity / tuned) on both platforms,
//! then benchmarks one ping-pong point.

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_bench::fig07::Platform;
use sonuma_bench::fig08;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lat = fig08::latency(Platform::SimulatedHardware);
    fig08::print(
        "Figure 8a: send/receive latency (sim'd HW)",
        "paper: 340 ns minimum; optimal threshold 256 B",
        "us",
        &lat,
    );
    let bw = fig08::bandwidth(Platform::SimulatedHardware);
    fig08::print(
        "Figure 8b: send/receive bandwidth (sim'd HW)",
        "paper: >10 Gbps at 4 KB; push flattens on per-packet cost",
        "Gbps",
        &bw,
    );
    let lat_dev = fig08::latency(Platform::DevPlatform);
    fig08::print(
        "Figure 8c: send/receive latency (dev platform)",
        "paper: 1.4 us minimum; optimal threshold 1 KB",
        "us",
        &lat_dev,
    );

    let mut g = c.benchmark_group("fig08");
    g.sample_size(10);
    g.bench_function("pingpong_64B_tuned", |b| {
        b.iter(|| black_box(fig08::half_duplex(Platform::SimulatedHardware, 256, 64)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
