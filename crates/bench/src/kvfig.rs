//! KV-service report consumers: the crossover table (GET p99 against
//! value size, one column per backend) and the per-tenant-class
//! achieved-vs-offered bars.
//!
//! Both figures read a saved `scenario --out` report back through the
//! bench's own [`Json`] layer, so `gen-figures kv` works on any CI
//! artifact, not just an in-process run. The crossover table is the
//! one-sided-vs-messaging story in one screen: the soNUMA column holds
//! flat while the connection-oriented backends grow with value size,
//! and the row where the columns cross is the size past which one-sided
//! line bursts stop paying for themselves.

use std::fmt::Write as _;

use crate::json::Json;
use crate::report::{cell, CsvTable};

/// One `(scenario, backend)` run's `kv` report section.
#[derive(Debug, Clone)]
pub struct KvRun {
    /// Scenario name from the report's `spec.name`.
    pub scenario: String,
    /// Backend label (`sonuma` / `tcp` / `rdma`).
    pub backend: String,
    /// The run's `kv` JSON object, verbatim.
    pub kv: Json,
}

/// Pulls every run that carries a `kv` section out of a scenario report.
pub fn kv_runs(doc: &Json) -> Vec<KvRun> {
    let mut out = Vec::new();
    if let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) {
        for sc in scenarios {
            let name = sc
                .get("spec")
                .and_then(|s| s.str_of("name"))
                .unwrap_or("?")
                .to_string();
            if let Some(runs) = sc.get("runs").and_then(Json::as_arr) {
                for run in runs {
                    if let Some(kv) = run.get("kv") {
                        out.push(KvRun {
                            scenario: name.clone(),
                            backend: run.str_of("backend").unwrap_or("?").to_string(),
                            kv: kv.clone(),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Distinct scenarios across the runs, in first-seen order.
fn scenarios(runs: &[KvRun]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in runs {
        if !out.contains(&r.scenario) {
            out.push(r.scenario.clone());
        }
    }
    out
}

/// Distinct backends across the runs, in first-seen order.
fn backends(runs: &[KvRun]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in runs {
        if !out.contains(&r.backend) {
            out.push(r.backend.clone());
        }
    }
    out
}

/// Distinct value-size classes (bytes) across the runs, ascending.
fn size_classes(runs: &[KvRun]) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    for r in runs {
        if let Some(classes) = r.kv.get("classes").and_then(Json::as_arr) {
            for c in classes {
                if let Some(b) = c.u64_of("bytes") {
                    if !out.contains(&b) {
                        out.push(b);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// GET p99 for one backend and one value-size class, in microseconds.
fn get_p99_us(runs: &[KvRun], backend: &str, bytes: u64) -> Option<f64> {
    let run = runs.iter().find(|r| r.backend == backend)?;
    let classes = run.kv.get("classes").and_then(Json::as_arr)?;
    let class = classes.iter().find(|c| c.u64_of("bytes") == Some(bytes))?;
    Some(class.f64_of("get_p99_ns")? / 1e3)
}

/// The crossover tables: per scenario, one row per value-size class
/// with GET p99 (us) per backend side by side.
pub fn render_crossover(runs: &[KvRun]) -> String {
    let mut out = String::new();
    for (i, scenario) in scenarios(runs).iter().enumerate() {
        let group: Vec<KvRun> = runs
            .iter()
            .filter(|r| r.scenario == *scenario)
            .cloned()
            .collect();
        if i > 0 {
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "KV crossover: GET p99 (us) by value size ({scenario})");
        let cols = backends(&group);
        let _ = write!(out, "{:>12}", "value_bytes");
        for b in &cols {
            let _ = write!(out, " {b:>10}");
        }
        let _ = writeln!(out);
        for bytes in size_classes(&group) {
            let _ = write!(out, "{bytes:>12}");
            for b in &cols {
                match get_p99_us(&group, b, bytes) {
                    Some(us) => {
                        let _ = write!(out, " {us:>10.2}");
                    }
                    None => {
                        let _ = write!(out, " {:>10}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// The crossover table as a plottable CSV: long form, one row per
/// `(backend, value-size class)`.
pub fn crossover_csv(runs: &[KvRun]) -> CsvTable {
    let mut t = CsvTable::new(&[
        "scenario",
        "backend",
        "value_bytes",
        "lines",
        "gets",
        "get_p50_us",
        "get_p99_us",
        "put_p99_us",
    ]);
    for r in runs {
        if let Some(classes) = r.kv.get("classes").and_then(Json::as_arr) {
            for c in classes {
                t.row(&[
                    r.scenario.clone(),
                    r.backend.clone(),
                    c.u64_of("bytes").unwrap_or(0).to_string(),
                    c.u64_of("lines").unwrap_or(0).to_string(),
                    c.u64_of("gets").unwrap_or(0).to_string(),
                    cell(c.f64_of("get_p50_ns").unwrap_or(f64::NAN) / 1e3),
                    cell(c.f64_of("get_p99_ns").unwrap_or(f64::NAN) / 1e3),
                    cell(c.f64_of("put_p99_ns").unwrap_or(f64::NAN) / 1e3),
                ]);
            }
        }
    }
    t
}

/// The SLO bars: per backend and tenant class, achieved against offered
/// operations with the class GET p99 alongside.
pub fn render_slo(runs: &[KvRun]) -> String {
    let mut out = String::new();
    for (i, scenario) in scenarios(runs).iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "KV SLO: achieved vs offered by tenant class ({scenario})"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>10} {:>10} {:>9} {:>10}",
            "backend", "class", "offered", "achieved", "fraction", "p99_us"
        );
        for r in runs.iter().filter(|r| r.scenario == *scenario) {
            if let Some(slo) = r.kv.get("slo").and_then(Json::as_arr) {
                for row in slo {
                    let _ = writeln!(
                        out,
                        "{:>8} {:>8} {:>10} {:>10} {:>9.4} {:>10.2}",
                        r.backend,
                        row.str_of("class").unwrap_or("?"),
                        row.u64_of("offered_ops").unwrap_or(0),
                        row.u64_of("ops").unwrap_or(0),
                        row.f64_of("achieved_fraction").unwrap_or(f64::NAN),
                        row.f64_of("lat_p99_ns").unwrap_or(f64::NAN) / 1e3,
                    );
                }
            }
        }
    }
    out
}

/// The SLO bars as a plottable CSV: one row per `(backend, class)`.
pub fn slo_csv(runs: &[KvRun]) -> CsvTable {
    let mut t = CsvTable::new(&[
        "scenario",
        "backend",
        "class",
        "tenants",
        "offered_ops",
        "ops",
        "achieved_fraction",
        "lat_p50_us",
        "lat_p99_us",
    ]);
    for r in runs {
        if let Some(slo) = r.kv.get("slo").and_then(Json::as_arr) {
            for row in slo {
                t.row(&[
                    r.scenario.clone(),
                    r.backend.clone(),
                    row.str_of("class").unwrap_or("?").to_string(),
                    row.u64_of("tenants").unwrap_or(0).to_string(),
                    row.u64_of("offered_ops").unwrap_or(0).to_string(),
                    row.u64_of("ops").unwrap_or(0).to_string(),
                    cell(row.f64_of("achieved_fraction").unwrap_or(f64::NAN)),
                    cell(row.f64_of("lat_p50_ns").unwrap_or(f64::NAN) / 1e3),
                    cell(row.f64_of("lat_p99_ns").unwrap_or(f64::NAN) / 1e3),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Json {
        Json::parse(
            r#"{"scenarios":[{"spec":{"name":"kv"},"runs":[
                {"backend":"sonuma","kv":{
                    "classes":[
                        {"bytes":4096,"lines":64,"gets":10,"get_p50_ns":1000,
                         "get_p99_ns":2000,"put_p99_ns":3000},
                        {"bytes":8192,"lines":128,"gets":10,"get_p50_ns":1500,
                         "get_p99_ns":2500,"put_p99_ns":3500}],
                    "slo":[{"class":"gold","tenants":4,"offered_ops":100,
                            "ops":90,"achieved_fraction":0.9,
                            "lat_p50_ns":1000,"lat_p99_ns":2000}]}},
                {"backend":"tcp","kv":{
                    "classes":[
                        {"bytes":4096,"lines":64,"gets":10,"get_p50_ns":4000,
                         "get_p99_ns":9000,"put_p99_ns":9500}],
                    "slo":[{"class":"gold","tenants":4,"offered_ops":100,
                            "ops":80,"achieved_fraction":0.8,
                            "lat_p50_ns":4000,"lat_p99_ns":9000}]}}
            ]}]}"#,
        )
        .expect("literal report parses")
    }

    #[test]
    fn crossover_pivots_backends_into_columns() {
        let runs = kv_runs(&report());
        assert_eq!(runs.len(), 2);
        let text = render_crossover(&runs);
        assert!(text.contains("sonuma"), "missing backend column:\n{text}");
        assert!(text.contains("tcp"), "missing backend column:\n{text}");
        assert!(text.contains("4096"), "missing size row:\n{text}");
        // tcp has no 8192 class: the cell renders as a dash, not a panic.
        assert!(text.contains('-'), "missing hole marker:\n{text}");
        let csv = crossover_csv(&runs).to_csv();
        assert_eq!(csv.lines().count(), 4, "header + 3 class rows:\n{csv}");
        assert!(
            csv.contains("kv,sonuma,8192,128,10,1.5000,2.5000,3.5000"),
            "{csv}"
        );
    }

    #[test]
    fn multi_scenario_reports_render_one_table_each() {
        let mut runs = kv_runs(&report());
        let mut second = runs.clone();
        for r in &mut second {
            r.scenario = "kv2".into();
        }
        runs.extend(second);
        let text = render_crossover(&runs);
        assert_eq!(
            text.matches("KV crossover:").count(),
            2,
            "one table per scenario:\n{text}"
        );
        let slo = render_slo(&runs);
        assert_eq!(slo.matches("KV SLO:").count(), 2, "{slo}");
    }

    #[test]
    fn slo_rows_surface_every_class() {
        let runs = kv_runs(&report());
        let text = render_slo(&runs);
        assert!(text.contains("gold"), "{text}");
        let csv = slo_csv(&runs).to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 slo rows:\n{csv}");
        assert!(
            csv.contains("kv,tcp,gold,4,100,80,0.8000,4.0000,9.0000"),
            "{csv}"
        );
    }
}
