//! Figure 1: Netpipe benchmark on a Calxeda microserver (TCP/IP baseline).

use sonuma_baselines::TcpStack;
use sonuma_sim::SimTime;

/// One row of the Fig. 1 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Request size in bytes.
    pub size: u64,
    /// Half-duplex latency.
    pub latency: SimTime,
    /// Streaming bandwidth in Gbps.
    pub gbps: f64,
}

/// Runs the Netpipe sweep over the commodity stack.
pub fn run() -> Vec<Row> {
    let tcp = TcpStack::calxeda();
    let sizes: Vec<u64> = (0..=20).map(|i| 1u64 << i).collect(); // 1 B .. 1 MB
    tcp.netpipe_sweep(&sizes)
        .into_iter()
        .map(|(size, latency, gbps)| Row {
            size,
            latency,
            gbps,
        })
        .collect()
}

/// Prints the figure with the paper's headline numbers alongside.
pub fn print(rows: &[Row]) {
    println!("\n=== Figure 1: Netpipe over TCP/IP on Calxeda (baseline) ===");
    println!("paper: >40 us small-message latency; <2 Gbps peak bandwidth");
    println!("{:>10} {:>14} {:>12}", "size(B)", "latency(us)", "bw(Gbps)");
    for r in rows {
        println!(
            "{:>10} {:>14.1} {:>12.3}",
            r.size,
            r.latency.as_us_f64(),
            r.gbps
        );
    }
}

/// Asserts the paper's qualitative claims (used by tests and CI).
pub fn check(rows: &[Row]) {
    let small = rows.iter().find(|r| r.size == 64).expect("64 B row");
    assert!(small.latency.as_us_f64() > 40.0, "small-message latency");
    let peak = rows.iter().map(|r| r.gbps).fold(0.0f64, f64::max);
    assert!(peak < 2.2, "bandwidth plateau {peak}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_matches_paper_shape() {
        let rows = run();
        assert_eq!(rows.len(), 21);
        check(&rows);
    }
}
