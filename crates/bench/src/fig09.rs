//! Figure 9: PageRank speedup for the three implementations (§7.5).
//!
//! Speedups are relative to the single-threaded shared-memory baseline, as
//! in the paper. Left plot: simulated hardware, 2-8 nodes, one superstep
//! (the paper also simulates a single superstep "because of the high
//! execution time of the cycle-accurate model"). Right plot: development
//! platform, 2-16 nodes.
//!
//! Substitution note: the Twitter crawl \[29\] is replaced by a deterministic
//! R-MAT graph with matching skew (see DESIGN.md).

use std::rc::Rc;

use sonuma_apps::graph::{Graph, GraphConfig};
use sonuma_apps::pagerank::{self, PagerankConfig, Variant};
use sonuma_sim::SimTime;

/// One measured scale point.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Threads (SHM) or nodes (soNUMA variants).
    pub parallelism: usize,
    /// SHM(pthreads) speedup.
    pub shm: f64,
    /// soNUMA(bulk) speedup.
    pub bulk: f64,
    /// soNUMA(fine-grain) speedup.
    pub fine: f64,
}

/// Sweep output plus context.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Per-scale speedups.
    pub rows: Vec<Row>,
    /// Single-thread baseline runtime.
    pub baseline: SimTime,
    /// Graph size used.
    pub vertices: usize,
    /// Edges in the graph.
    pub edges: usize,
}

/// Runs the speedup sweep.
///
/// `dev_platform` selects the right-hand plot (soNUMA variants run with
/// RMCemu timing); `scales` lists the node/thread counts.
pub fn run(vertices: usize, scales: &[usize], dev_platform: bool) -> Fig9 {
    // ~32 edges per vertex: the Twitter crawl's density regime, where
    // compute rather than the shuffle dominates a superstep.
    let graph = Rc::new(Graph::rmat(&GraphConfig {
        vertices,
        edges: vertices * 32,
        skew: (0.57, 0.19, 0.19, 0.05),
        seed: 0xF16,
    }));
    let cfg = PagerankConfig {
        supersteps: 1,
        dev_platform,
        ..Default::default()
    };
    let baseline = pagerank::run(Variant::Shm, 1, &graph, &cfg).total_time;
    let rows = scales
        .iter()
        .map(|&p| {
            let shm = pagerank::run(Variant::Shm, p, &graph, &cfg).total_time;
            let bulk = pagerank::run(Variant::Bulk, p, &graph, &cfg).total_time;
            let fine = pagerank::run(Variant::FineGrain, p, &graph, &cfg).total_time;
            Row {
                parallelism: p,
                shm: baseline.as_ns_f64() / shm.as_ns_f64(),
                bulk: baseline.as_ns_f64() / bulk.as_ns_f64(),
                fine: baseline.as_ns_f64() / fine.as_ns_f64(),
            }
        })
        .collect();
    Fig9 {
        rows,
        baseline,
        vertices,
        edges: graph.edges(),
    }
}

/// Prints one Fig. 9 panel.
pub fn print(title: &str, fig: &Fig9) {
    println!("\n=== {title} ===");
    println!(
        "paper: SHM ~= bulk (partition-imbalance limited); fine-grain trails (per-op issue rate)"
    );
    println!(
        "graph: {} vertices, {} edges (R-MAT; Twitter-crawl substitute); baseline {}",
        fig.vertices, fig.edges, fig.baseline
    );
    println!(
        "{:>8} {:>16} {:>16} {:>20}",
        "nodes", "SHM(pthreads)", "soNUMA(bulk)", "soNUMA(fine-grain)"
    );
    for r in &fig.rows {
        println!(
            "{:>8} {:>16.2} {:>16.2} {:>20.2}",
            r.parallelism, r.shm, r.bulk, r.fine
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_shape_matches_paper() {
        // Small graph keeps the test fast; the shape claims still hold.
        let fig = run(2048, &[2, 4], false);
        let last = fig.rows.last().unwrap();
        assert!(last.shm > 1.5, "SHM must scale: {:?}", last);
        assert!(last.bulk > 1.5, "bulk must scale: {:?}", last);
        assert!(
            last.fine < last.bulk,
            "fine-grain trails bulk (paper): {:?}",
            last
        );
        // Scaling is monotone across the sweep for SHM and bulk.
        assert!(fig.rows[0].shm <= fig.rows[1].shm + 0.25);
    }
}
