//! The scenario runner CLI.
//!
//! ```text
//! cargo run --release -p sonuma-bench --bin sonuma-bench -- scenario --smoke
//! ```
//!
//! Subcommand `scenario` sweeps declarative scenario specs across the
//! requested backends and writes a versioned, machine-readable
//! `BENCH.json`:
//!
//! * `--smoke` — the three canned CI specs;
//! * `--canned <name>` — one canned spec by name (repeatable; see `--list`);
//! * `--spec <file.toml>` — a spec file (repeatable);
//! * `--out <path>` — report destination (default `BENCH.json`);
//! * `--baseline <path>` — compare events/sec against a checked-in report
//!   and exit nonzero on regression;
//! * `--max-regress <frac>` — allowed events/sec drop (default `0.20`);
//! * `--compare-threads` — run each spec serially *and* sharded, record
//!   the wall ratio and both epoch counts in the report's `sharding`
//!   section, and fail on any simulated divergence;
//! * `--speculate <K>` — override every selected spec's speculative
//!   run-ahead depth (`[execution] speculate_epochs`); simulated output
//!   is identical at every depth, only wall time and the
//!   `sharding.speculation` counters change;
//! * `--max-peak-bytes <n>` — exit nonzero if the process's peak heap
//!   (tracked by the bench's own allocator) exceeds `n` bytes;
//! * `--trace-out <path>` — write each soNUMA run's flight-recorder
//!   trace (JSON lines; arms tracing at the default cadence when the
//!   spec has no `[trace]` section). With several scenarios selected,
//!   each writes `<stem>-<scenario><ext>`;
//! * `--trace-interval-us <f>` — override the sampling cadence;
//! * `--list` — print the canned spec names and exit.
//!
//! Subcommand `chrome-trace` converts a saved trace to Chrome
//! trace-event JSON for `chrome://tracing` / Perfetto.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

use sonuma_bench::json::Json;
use sonuma_bench::scenario::{
    self, calibrate, canned_specs, check_baseline, check_fault_baseline, check_kv_baseline,
    equivalence_diff, report_calibrated, run_spec, run_spec_compare_threads, run_specs,
    slim_report, smoke_specs, validate_report, ScenarioSpec, TraceSpec, REPORT_SCHEMA,
};

/// System allocator wrapped with a live-bytes high-water mark, so every
/// report carries `wall_peak_alloc_bytes` — the allocator's view of peak
/// RSS, immune to the page-cache noise `/usr/bin/time -v` picks up. The
/// two relaxed counters cost nothing measurable against the simulator's
/// allocation rate, and the bench binary is the only place that pays it.
struct PeakAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // Forwarded, NOT defaulted: the trait's default `alloc_zeroed` is
    // alloc + memset, which would physically touch every page of the
    // simulator's deliberately lazy `vec![0; n]` cache arrays. The
    // system allocator hands out already-zero mmap pages instead.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let live = if new_size >= layout.size() {
                LIVE_BYTES.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                    + (new_size - layout.size())
            } else {
                LIVE_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed)
                    - (layout.size() - new_size)
            };
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static PEAK_ALLOC: PeakAlloc = PeakAlloc;

/// Peak resident set (`VmHWM`) in bytes, from `/proc/self/status`.
/// Returns 0 where that interface is missing (non-Linux); callers fall
/// back to the allocator high-water mark, which is an upper bound
/// because untouched zero pages count toward it but never become
/// resident.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

fn usage() -> ! {
    eprintln!(
        "usage: sonuma-bench scenario [--smoke] [--canned NAME]... [--spec FILE]...\n\
         \x20                          [--threads N] [--speculate K] [--compare-threads]\n\
         \x20                          [--max-peak-bytes N] [--out FILE]\n\
         \x20                          [--trace-out FILE] [--trace-interval-us F]\n\
         \x20                          [--baseline FILE] [--max-regress FRAC] [--list]\n\
         \x20      sonuma-bench baseline [--regen] [--file PATH]\n\
         \x20      sonuma-bench diff-runs A.json B.json\n\
         \x20      sonuma-bench chrome-trace TRACE.jsonl [--out FILE]"
    );
    std::process::exit(2);
}

/// Pins glibc's mmap threshold so rack-scale `vec![0; n]` state stays
/// zero-page lazy. By default the threshold adapts upward every time a
/// large mmap'd chunk is freed; after the first machine build it rises
/// past the 512 KB cache-tag arrays, the re-timed builds get dirty sbrk
/// memory instead, and calloc memsets gigabytes that are never read.
/// Freezing the threshold (and lifting the mmap count cap) keeps every
/// large zeroed allocation resident only where it is touched.
#[cfg(target_os = "linux")]
fn pin_mmap_threshold() {
    unsafe extern "C" {
        fn mallopt(param: core::ffi::c_int, value: core::ffi::c_int) -> core::ffi::c_int;
    }
    const M_MMAP_THRESHOLD: core::ffi::c_int = -3;
    const M_MMAP_MAX: core::ffi::c_int = -4;
    unsafe {
        mallopt(M_MMAP_THRESHOLD, 32 << 10);
        mallopt(M_MMAP_MAX, 1 << 22);
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_mmap_threshold() {}

fn main() -> ExitCode {
    pin_mmap_threshold();
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("scenario") => scenario_cmd(args.collect()),
        Some("baseline") => baseline_cmd(args.collect()),
        Some("diff-runs") => diff_runs_cmd(args.collect()),
        Some("chrome-trace") => chrome_trace_cmd(args.collect()),
        _ => usage(),
    }
}

/// Reads and parses a JSON report, exiting with a CLI error on failure.
fn load_json(path: &str) -> Result<Json, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    Json::parse(&text).map_err(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        ExitCode::from(2)
    })
}

/// `diff-runs A B`: compares two scenario reports for simulated
/// equivalence (everything except `wall_*`, calibration, and shard
/// metadata must match byte-for-byte). Exit 0 iff equivalent — the CI
/// parallel-equivalence step's workhorse.
fn diff_runs_cmd(args: Vec<String>) -> ExitCode {
    let [a_path, b_path] = args.as_slice() else {
        usage();
    };
    let (a, b) = match (load_json(a_path), load_json(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(c), _) | (_, Err(c)) => return c,
    };
    let diffs = equivalence_diff(&a, &b);
    if diffs.is_empty() {
        println!("{a_path} and {b_path} are simulation-equivalent (wall/shard fields ignored)");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} difference(s) outside wall/shard fields:", diffs.len());
        for d in &diffs {
            eprintln!("  {d}");
        }
        ExitCode::FAILURE
    }
}

/// `chrome-trace TRACE.jsonl [--out FILE]`: converts a saved
/// flight-recorder trace to Chrome trace-event JSON (default output:
/// the input path with `.chrome.json` appended to the stem).
fn chrome_trace_cmd(args: Vec<String>) -> ExitCode {
    let mut input: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                })))
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(arg),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match sonuma_bench::tracefig::parse_trace(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = out.unwrap_or_else(|| {
        let mut p = PathBuf::from(&input);
        let stem = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".into());
        p.set_file_name(format!("{stem}.chrome.json"));
        p
    });
    if let Err(e) = std::fs::write(&out, sonuma_bench::tracefig::chrome_trace(&doc)) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} link, {} node, {} tenant, {} fault records)",
        out.display(),
        doc.links.len(),
        doc.node_recs.len(),
        doc.tenants.len(),
        doc.faults.len()
    );
    ExitCode::SUCCESS
}

/// `baseline [--regen] [--file PATH]`: without `--regen`, asserts the
/// checked-in baseline's schema matches this binary's (the friendly
/// version of the raw missing-field cascade a stale baseline used to
/// produce); with `--regen`, re-runs the full bench-smoke scenario set
/// and rewrites the baseline.
fn baseline_cmd(args: Vec<String>) -> ExitCode {
    let mut regen = false;
    let mut path = PathBuf::from("bench/baseline.json");
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--regen" => regen = true,
            "--file" => {
                path = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--file needs a value");
                    std::process::exit(2);
                }))
            }
            _ => usage(),
        }
    }
    if !regen {
        let doc = match load_json(&path.display().to_string()) {
            Ok(doc) => doc,
            Err(code) => return code,
        };
        return match doc.str_of("schema") {
            Some(REPORT_SCHEMA) => {
                println!(
                    "{}: schema {REPORT_SCHEMA} matches this binary",
                    path.display()
                );
                ExitCode::SUCCESS
            }
            other => {
                eprintln!(
                    "{}: schema {:?} does not match this binary's {REPORT_SCHEMA:?}; \
                     run `sonuma-bench baseline --regen`",
                    path.display(),
                    other.unwrap_or("<missing>")
                );
                ExitCode::FAILURE
            }
        };
    }
    let specs = baseline_specs();
    let results = run_specs(&specs);
    let calibration = calibrate();
    let doc = report_calibrated(&results, calibration);
    if let Err(e) = validate_report(&doc) {
        eprintln!("internal error: generated report fails schema check: {e}");
        return ExitCode::FAILURE;
    }
    // The checked-in baseline keeps only what the gates read: aggregates
    // and the hottest-N detail rows, never per-node dumps. The full
    // report stays available from any `scenario --out` run.
    let doc = slim_report(&doc);
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "regenerated {} ({} scenarios, schema {REPORT_SCHEMA})",
        path.display(),
        specs.len()
    );
    ExitCode::SUCCESS
}

/// The scenario set the bench-smoke lane gates on — what `baseline
/// --regen` records.
fn baseline_specs() -> Vec<ScenarioSpec> {
    let keep = [
        "rack64-tenants",
        "rack64-tenants-strict",
        "rack512-neighbor",
        "rack512-torus-scan",
        "rack1024-shard",
        "rack4096",
        "rack8192",
        "rack512-linkflap",
        "rack1024-nodekill",
        "rack512-kv",
        "rack1024-kv-zipf",
    ];
    let mut specs = smoke_specs();
    specs.extend(
        canned_specs()
            .into_iter()
            .filter(|s| keep.contains(&s.name.as_str())),
    );
    specs
}

fn scenario_cmd(args: Vec<String>) -> ExitCode {
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let mut out = PathBuf::from("BENCH.json");
    let mut baseline: Option<PathBuf> = None;
    let mut max_regress = 0.20f64;
    let mut threads: Option<usize> = None;
    let mut speculate: Option<usize> = None;
    let mut compare_threads = false;
    let mut max_peak_bytes: Option<u64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_interval_us: Option<f64> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--smoke" => specs.extend(smoke_specs()),
            "--canned" => {
                let name = value("--canned");
                match canned_specs().into_iter().find(|s| s.name == name) {
                    Some(spec) => specs.push(spec),
                    None => {
                        eprintln!("unknown canned spec {name:?}; try --list");
                        return ExitCode::from(2);
                    }
                }
            }
            "--spec" => {
                let path = value("--spec");
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                match ScenarioSpec::from_toml(&text) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--threads" => {
                threads = Some(value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }));
            }
            "--speculate" => {
                speculate = Some(value("--speculate").parse().unwrap_or_else(|_| {
                    eprintln!("--speculate needs a non-negative integer");
                    std::process::exit(2);
                }));
            }
            "--compare-threads" => compare_threads = true,
            "--max-peak-bytes" => {
                max_peak_bytes = Some(value("--max-peak-bytes").parse().unwrap_or_else(|_| {
                    eprintln!("--max-peak-bytes needs a byte count");
                    std::process::exit(2);
                }));
            }
            "--out" => out = PathBuf::from(value("--out")),
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--trace-interval-us" => {
                trace_interval_us =
                    Some(value("--trace-interval-us").parse().unwrap_or_else(|_| {
                        eprintln!("--trace-interval-us needs a number of microseconds");
                        std::process::exit(2);
                    }));
            }
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--max-regress" => {
                max_regress = value("--max-regress").parse().unwrap_or_else(|_| {
                    eprintln!("--max-regress needs a fraction like 0.20");
                    std::process::exit(2);
                });
            }
            "--list" => {
                for spec in canned_specs() {
                    println!(
                        "{:<20} {:>4} nodes  {:<12} {:<14} backend={}",
                        spec.name,
                        spec.nodes,
                        spec.topology_label(),
                        spec.workload_label(),
                        spec.backend_label(),
                    );
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }
    if specs.is_empty() {
        eprintln!("no scenarios selected (use --smoke, --canned, or --spec)");
        return ExitCode::from(2);
    }
    if let Some(threads) = threads {
        for spec in &mut specs {
            spec.threads = threads;
            if let Err(e) = spec.validate() {
                eprintln!("--threads {threads}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(speculate) = speculate {
        for spec in &mut specs {
            spec.speculate_epochs = speculate;
            if let Err(e) = spec.validate() {
                eprintln!("--speculate {speculate}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if trace_out.is_some() || trace_interval_us.is_some() {
        for spec in &mut specs {
            // `--trace-out` arms the recorder even on specs without a
            // [trace] section; an explicit cadence overrides both.
            let t = spec.trace.get_or_insert_with(TraceSpec::default);
            if let Some(us) = trace_interval_us {
                t.interval_us = us;
            }
            if let Err(e) = spec.validate() {
                eprintln!("--trace-interval-us: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let results: Vec<scenario::ScenarioResult> = if compare_threads {
        specs.iter().map(run_spec_compare_threads).collect()
    } else {
        specs.iter().map(run_spec).collect()
    };
    print_summary(&results);
    if compare_threads {
        for result in &results {
            for run in &result.runs {
                if let Some(cmp) = &run.compare_serial {
                    println!(
                        "compare-threads {}/{}: wall {:.3}s vs {:.3}s serial (x{:.2}), \
                         epochs {} vs {} serial",
                        result.spec.name,
                        run.backend,
                        run.wall_secs,
                        cmp.wall_secs,
                        cmp.wall_ratio,
                        run.epochs,
                        cmp.epochs,
                    );
                }
            }
        }
    }

    // Host calibration lets the baseline gate compare machines by ratio
    // instead of raw wall-clock rates.
    let calibration = calibrate();
    println!("\nhost calibration: {calibration:.0} boxed events/sec");
    let mut doc = report_calibrated(&results, calibration);
    if let Err(e) = validate_report(&doc) {
        eprintln!("internal error: generated report fails schema check: {e}");
        return ExitCode::FAILURE;
    }
    // `wall_` prefix => stripped by the equivalence diff like every other
    // host-side number. The alloc mark counts untouched zero pages, the
    // RSS mark only what the kernel materialized; the gap is the lazy
    // state the memory diet never paid for.
    let peak_alloc = PEAK_BYTES.load(Ordering::Relaxed) as u64;
    let peak_rss = peak_rss_bytes();
    let peak = if peak_rss > 0 { peak_rss } else { peak_alloc };
    if let Json::Obj(members) = &mut doc {
        members.push(("wall_peak_alloc_bytes".into(), Json::Num(peak_alloc as f64)));
        members.push(("wall_peak_rss_bytes".into(), Json::Num(peak_rss as f64)));
    }
    println!(
        "peak heap: {:.1} MiB allocated, {:.1} MiB resident",
        peak_alloc as f64 / (1024.0 * 1024.0),
        peak_rss as f64 / (1024.0 * 1024.0)
    );
    let text = doc.render();
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", out.display());

    if let Some(base) = &trace_out {
        let traced: Vec<(&str, &String)> = results
            .iter()
            .flat_map(|r| {
                r.runs
                    .iter()
                    .filter_map(|run| run.trace.as_ref().map(|t| (r.spec.name.as_str(), &t.text)))
            })
            .collect();
        if traced.is_empty() {
            eprintln!(
                "--trace-out: no run produced a trace (the soNUMA backend is the only traced one)"
            );
            return ExitCode::FAILURE;
        }
        let many = traced.len() > 1;
        for (name, text) in traced {
            let path = if many {
                let stem = base
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "trace".into());
                let ext = base
                    .extension()
                    .map(|e| format!(".{}", e.to_string_lossy()))
                    .unwrap_or_default();
                base.with_file_name(format!("{stem}-{name}{ext}"))
            } else {
                base.clone()
            };
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} ({} records)",
                path.display(),
                text.lines().count().saturating_sub(1)
            );
        }
    }

    if let Some(path) = baseline {
        let base_text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let base = match Json::parse(&base_text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("baseline {} is not valid JSON: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let mut check = check_baseline(&doc, &base, max_regress);
        let fault_check = check_fault_baseline(&doc, &base);
        check.notes.extend(fault_check.notes);
        check.failures.extend(fault_check.failures);
        let kv_check = check_kv_baseline(&doc, &base);
        check.notes.extend(kv_check.notes);
        check.failures.extend(kv_check.failures);
        for note in &check.notes {
            println!("note: {note}");
        }
        if check.failures.is_empty() {
            println!(
                "baseline check passed ({}% regression budget)",
                max_regress * 100.0
            );
        } else {
            for failure in &check.failures {
                eprintln!("REGRESSION: {failure}");
            }
            return ExitCode::FAILURE;
        }
    }
    if let Some(budget) = max_peak_bytes {
        if peak > budget {
            eprintln!(
                "REGRESSION: peak resident heap {peak} bytes exceeds --max-peak-bytes {budget}"
            );
            return ExitCode::FAILURE;
        }
        println!("peak heap within budget ({peak} <= {budget} bytes)");
    }
    ExitCode::SUCCESS
}

fn print_summary(results: &[scenario::ScenarioResult]) {
    println!(
        "{:<20} {:<22} {:>9} {:>12} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "scenario",
        "backend",
        "ops",
        "ops/s(sim)",
        "Gbps",
        "p50(ns)",
        "p99(ns)",
        "events/s(wall)",
        "pkts/s(wall)"
    );
    for result in results {
        for run in &result.runs {
            println!(
                "{:<20} {:<22} {:>9} {:>12.0} {:>9.2} {:>10.0} {:>10.0} {:>12.0} {:>12.0}",
                result.spec.name,
                run.backend,
                run.ops,
                run.ops_per_sec,
                run.gbps,
                run.p50.as_ns_f64(),
                run.p99.as_ns_f64(),
                run.wall_events_per_sec,
                run.wall_packets_per_sec,
            );
            if !run.tenants.is_empty() {
                let per_class: Vec<String> = [
                    sonuma_core::SloClass::Gold,
                    sonuma_core::SloClass::Silver,
                    sonuma_core::SloClass::Bronze,
                ]
                .iter()
                .filter_map(|&class| {
                    run.class_histogram(class).map(|hist| {
                        format!(
                            "{} p99 {:.0} ns",
                            class.as_str(),
                            hist.percentile(0.99).as_ns_f64()
                        )
                    })
                })
                .collect();
                println!(
                    "{:<20}   {} tenants, jain {:.4}, {}",
                    "",
                    run.tenants.len(),
                    run.jain_fairness(),
                    per_class.join(", "),
                );
            }
            if let Some(t) = &run.trace {
                let s = t.summary;
                println!(
                    "{:<20}   trace: {} ticks, {} link + {} node + {} fault + {} tenant samples, \
                     {} dropped, overhead {:.3}s",
                    "",
                    s.ticks,
                    s.link_samples,
                    s.node_samples,
                    s.fault_events,
                    t.tenant_samples,
                    s.link_dropped + s.node_dropped + s.fault_dropped,
                    t.wall_overhead_secs,
                );
            }
        }
    }
}
