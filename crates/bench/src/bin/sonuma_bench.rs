//! The scenario runner CLI.
//!
//! ```text
//! cargo run --release -p sonuma-bench --bin sonuma-bench -- scenario --smoke
//! ```
//!
//! Subcommand `scenario` sweeps declarative scenario specs across the
//! requested backends and writes a versioned, machine-readable
//! `BENCH.json`:
//!
//! * `--smoke` — the three canned CI specs;
//! * `--canned <name>` — one canned spec by name (repeatable; see `--list`);
//! * `--spec <file.toml>` — a spec file (repeatable);
//! * `--out <path>` — report destination (default `BENCH.json`);
//! * `--baseline <path>` — compare events/sec against a checked-in report
//!   and exit nonzero on regression;
//! * `--max-regress <frac>` — allowed events/sec drop (default `0.20`);
//! * `--list` — print the canned spec names and exit.

use std::path::PathBuf;
use std::process::ExitCode;

use sonuma_bench::json::Json;
use sonuma_bench::scenario::{
    self, calibrate, canned_specs, check_baseline, equivalence_diff, report_calibrated, run_specs,
    smoke_specs, validate_report, ScenarioSpec, REPORT_SCHEMA,
};

fn usage() -> ! {
    eprintln!(
        "usage: sonuma-bench scenario [--smoke] [--canned NAME]... [--spec FILE]...\n\
         \x20                          [--threads N] [--out FILE] [--baseline FILE]\n\
         \x20                          [--max-regress FRAC] [--list]\n\
         \x20      sonuma-bench baseline [--regen] [--file PATH]\n\
         \x20      sonuma-bench diff-runs A.json B.json"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("scenario") => scenario_cmd(args.collect()),
        Some("baseline") => baseline_cmd(args.collect()),
        Some("diff-runs") => diff_runs_cmd(args.collect()),
        _ => usage(),
    }
}

/// Reads and parses a JSON report, exiting with a CLI error on failure.
fn load_json(path: &str) -> Result<Json, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    Json::parse(&text).map_err(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        ExitCode::from(2)
    })
}

/// `diff-runs A B`: compares two scenario reports for simulated
/// equivalence (everything except `wall_*`, calibration, and shard
/// metadata must match byte-for-byte). Exit 0 iff equivalent — the CI
/// parallel-equivalence step's workhorse.
fn diff_runs_cmd(args: Vec<String>) -> ExitCode {
    let [a_path, b_path] = args.as_slice() else {
        usage();
    };
    let (a, b) = match (load_json(a_path), load_json(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(c), _) | (_, Err(c)) => return c,
    };
    let diffs = equivalence_diff(&a, &b);
    if diffs.is_empty() {
        println!("{a_path} and {b_path} are simulation-equivalent (wall/shard fields ignored)");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} difference(s) outside wall/shard fields:", diffs.len());
        for d in &diffs {
            eprintln!("  {d}");
        }
        ExitCode::FAILURE
    }
}

/// `baseline [--regen] [--file PATH]`: without `--regen`, asserts the
/// checked-in baseline's schema matches this binary's (the friendly
/// version of the raw missing-field cascade a stale baseline used to
/// produce); with `--regen`, re-runs the full bench-smoke scenario set
/// and rewrites the baseline.
fn baseline_cmd(args: Vec<String>) -> ExitCode {
    let mut regen = false;
    let mut path = PathBuf::from("bench/baseline.json");
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--regen" => regen = true,
            "--file" => {
                path = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--file needs a value");
                    std::process::exit(2);
                }))
            }
            _ => usage(),
        }
    }
    if !regen {
        let doc = match load_json(&path.display().to_string()) {
            Ok(doc) => doc,
            Err(code) => return code,
        };
        return match doc.str_of("schema") {
            Some(REPORT_SCHEMA) => {
                println!(
                    "{}: schema {REPORT_SCHEMA} matches this binary",
                    path.display()
                );
                ExitCode::SUCCESS
            }
            other => {
                eprintln!(
                    "{}: schema {:?} does not match this binary's {REPORT_SCHEMA:?}; \
                     run `sonuma-bench baseline --regen`",
                    path.display(),
                    other.unwrap_or("<missing>")
                );
                ExitCode::FAILURE
            }
        };
    }
    let specs = baseline_specs();
    let results = run_specs(&specs);
    let calibration = calibrate();
    let doc = report_calibrated(&results, calibration);
    if let Err(e) = validate_report(&doc) {
        eprintln!("internal error: generated report fails schema check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "regenerated {} ({} scenarios, schema {REPORT_SCHEMA})",
        path.display(),
        specs.len()
    );
    ExitCode::SUCCESS
}

/// The scenario set the bench-smoke lane gates on — what `baseline
/// --regen` records.
fn baseline_specs() -> Vec<ScenarioSpec> {
    let keep = [
        "rack64-tenants",
        "rack64-tenants-strict",
        "rack512-neighbor",
        "rack512-torus-scan",
        "rack1024-shard",
    ];
    let mut specs = smoke_specs();
    specs.extend(
        canned_specs()
            .into_iter()
            .filter(|s| keep.contains(&s.name.as_str())),
    );
    specs
}

fn scenario_cmd(args: Vec<String>) -> ExitCode {
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let mut out = PathBuf::from("BENCH.json");
    let mut baseline: Option<PathBuf> = None;
    let mut max_regress = 0.20f64;
    let mut threads: Option<usize> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--smoke" => specs.extend(smoke_specs()),
            "--canned" => {
                let name = value("--canned");
                match canned_specs().into_iter().find(|s| s.name == name) {
                    Some(spec) => specs.push(spec),
                    None => {
                        eprintln!("unknown canned spec {name:?}; try --list");
                        return ExitCode::from(2);
                    }
                }
            }
            "--spec" => {
                let path = value("--spec");
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                match ScenarioSpec::from_toml(&text) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--threads" => {
                threads = Some(value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                }));
            }
            "--out" => out = PathBuf::from(value("--out")),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--max-regress" => {
                max_regress = value("--max-regress").parse().unwrap_or_else(|_| {
                    eprintln!("--max-regress needs a fraction like 0.20");
                    std::process::exit(2);
                });
            }
            "--list" => {
                for spec in canned_specs() {
                    println!(
                        "{:<20} {:>4} nodes  {:<12} {:<14} backend={}",
                        spec.name,
                        spec.nodes,
                        spec.topology_label(),
                        spec.workload_label(),
                        spec.backend_label(),
                    );
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }
    if specs.is_empty() {
        eprintln!("no scenarios selected (use --smoke, --canned, or --spec)");
        return ExitCode::from(2);
    }
    if let Some(threads) = threads {
        for spec in &mut specs {
            spec.threads = threads;
            if let Err(e) = spec.validate() {
                eprintln!("--threads {threads}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let results = run_specs(&specs);
    print_summary(&results);

    // Host calibration lets the baseline gate compare machines by ratio
    // instead of raw wall-clock rates.
    let calibration = calibrate();
    println!("\nhost calibration: {calibration:.0} boxed events/sec");
    let doc = report_calibrated(&results, calibration);
    if let Err(e) = validate_report(&doc) {
        eprintln!("internal error: generated report fails schema check: {e}");
        return ExitCode::FAILURE;
    }
    let text = doc.render();
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", out.display());

    if let Some(path) = baseline {
        let base_text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let base = match Json::parse(&base_text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("baseline {} is not valid JSON: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let check = check_baseline(&doc, &base, max_regress);
        for note in &check.notes {
            println!("note: {note}");
        }
        if check.failures.is_empty() {
            println!(
                "baseline check passed ({}% regression budget)",
                max_regress * 100.0
            );
        } else {
            for failure in &check.failures {
                eprintln!("REGRESSION: {failure}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn print_summary(results: &[scenario::ScenarioResult]) {
    println!(
        "{:<20} {:<22} {:>9} {:>12} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "scenario",
        "backend",
        "ops",
        "ops/s(sim)",
        "Gbps",
        "p50(ns)",
        "p99(ns)",
        "events/s(wall)",
        "pkts/s(wall)"
    );
    for result in results {
        for run in &result.runs {
            println!(
                "{:<20} {:<22} {:>9} {:>12.0} {:>9.2} {:>10.0} {:>10.0} {:>12.0} {:>12.0}",
                result.spec.name,
                run.backend,
                run.ops,
                run.ops_per_sec,
                run.gbps,
                run.p50.as_ns_f64(),
                run.p99.as_ns_f64(),
                run.wall_events_per_sec,
                run.wall_packets_per_sec,
            );
            if !run.tenants.is_empty() {
                let per_class: Vec<String> = [
                    sonuma_core::SloClass::Gold,
                    sonuma_core::SloClass::Silver,
                    sonuma_core::SloClass::Bronze,
                ]
                .iter()
                .filter_map(|&class| {
                    run.class_histogram(class).map(|hist| {
                        format!(
                            "{} p99 {:.0} ns",
                            class.as_str(),
                            hist.percentile(0.99).as_ns_f64()
                        )
                    })
                })
                .collect();
                println!(
                    "{:<20}   {} tenants, jain {:.4}, {}",
                    "",
                    run.tenants.len(),
                    run.jain_fairness(),
                    per_class.join(", "),
                );
            }
        }
    }
}
