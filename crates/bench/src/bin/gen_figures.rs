//! Regenerates every table and figure of the soNUMA evaluation.
//!
//! ```text
//! cargo run -p sonuma-bench --bin gen-figures --release
//! ```
//!
//! Pass subset names (`table1 fig1 fig7 fig8 fig9 table2 ablations
//! pipelines`) to
//! print only some; add `--csv <dir>` to also save plottable CSV files.
//!
//! The `trace` subset (never part of the default run) renders the
//! flight-recorder figures — the link-utilization heatmap and the
//! stall/recovery timeline. It reads a saved trace via `--trace-file
//! <path>`, or, with no file, runs the canned `rack1024-nodekill`
//! scenario with tracing on and renders its recovery dip.
//!
//! The `kv` subset (also only when named) renders the KV-service
//! figures — the GET-p99-vs-value-size crossover table per backend and
//! the per-tenant-class achieved-vs-offered bars. It reads a saved
//! scenario report via `--kv-report <path>`, or, with no file, runs the
//! canned `rack512-kv` scenario across all three backends.

use std::path::PathBuf;

use sonuma_bench::fig07::Platform;
use sonuma_bench::report::{cell, CsvTable};
use sonuma_bench::{ablations, fig01, fig07, fig08, fig09, kvfig, table1, table2, tracefig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir: Option<PathBuf> = args.iter().position(|a| a == "--csv").map(|i| {
        let dir = args.get(i + 1).expect("--csv needs a directory").clone();
        args.drain(i..=i + 1);
        PathBuf::from(dir)
    });
    let trace_file: Option<PathBuf> = args.iter().position(|a| a == "--trace-file").map(|i| {
        let path = args.get(i + 1).expect("--trace-file needs a path").clone();
        args.drain(i..=i + 1);
        PathBuf::from(path)
    });
    let kv_report: Option<PathBuf> = args.iter().position(|a| a == "--kv-report").map(|i| {
        let path = args.get(i + 1).expect("--kv-report needs a path").clone();
        args.drain(i..=i + 1);
        PathBuf::from(path)
    });
    let save = |name: &str, table: &CsvTable| {
        if let Some(dir) = &csv_dir {
            let path = table.save(dir, name).expect("write CSV");
            eprintln!("wrote {}", path.display());
        }
    };
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        table1::print();
    }
    if want("fig1") {
        let rows = fig01::run();
        fig01::print(&rows);
        let mut t = CsvTable::new(&["size_bytes", "latency_us", "bandwidth_gbps"]);
        for r in &rows {
            t.row(&[
                r.size.to_string(),
                cell(r.latency.as_us_f64()),
                cell(r.gbps),
            ]);
        }
        save("fig01_netpipe_tcp", &t);
    }
    if want("fig7") {
        let lat_hw = fig07::latency(Platform::SimulatedHardware);
        fig07::print_latency(Platform::SimulatedHardware, &lat_hw);
        let bw = fig07::bandwidth(Platform::SimulatedHardware);
        fig07::print_bandwidth(&bw);
        let lat_dev = fig07::latency(Platform::DevPlatform);
        fig07::print_latency(Platform::DevPlatform, &lat_dev);

        for (name, rows) in [
            ("fig07a_latency_hw", &lat_hw),
            ("fig07c_latency_dev", &lat_dev),
        ] {
            let mut t = CsvTable::new(&["size_bytes", "single_us", "double_us"]);
            for r in rows {
                t.row(&[
                    r.size.to_string(),
                    cell(r.single.as_us_f64()),
                    cell(r.double.as_us_f64()),
                ]);
            }
            save(name, &t);
        }
        let mut t = CsvTable::new(&["size_bytes", "single_gbps", "double_gbps", "mops"]);
        for r in &bw {
            t.row(&[
                r.size.to_string(),
                cell(r.single_gbps),
                cell(r.double_gbps),
                cell(r.iops / 1e6),
            ]);
        }
        save("fig07b_bandwidth_hw", &t);
    }
    if want("fig8") {
        let lat = fig08::latency(Platform::SimulatedHardware);
        fig08::print(
            "Figure 8a: send/receive latency (sim'd HW)",
            "paper: 340 ns minimum; optimal threshold 256 B",
            "us",
            &lat,
        );
        let bw = fig08::bandwidth(Platform::SimulatedHardware);
        fig08::print(
            "Figure 8b: send/receive bandwidth (sim'd HW)",
            "paper: >10 Gbps at 4 KB; push flattens on per-packet cost",
            "Gbps",
            &bw,
        );
        let lat_dev = fig08::latency(Platform::DevPlatform);
        fig08::print(
            "Figure 8c: send/receive latency (dev platform)",
            "paper: 1.4 us minimum; optimal threshold 1 KB",
            "us",
            &lat_dev,
        );
        for (name, rows) in [
            ("fig08a_msg_latency_hw", &lat),
            ("fig08b_msg_bandwidth_hw", &bw),
            ("fig08c_msg_latency_dev", &lat_dev),
        ] {
            let mut t = CsvTable::new(&["size_bytes", "pull_only", "push_only", "tuned"]);
            for r in rows {
                t.row(&[
                    r.size.to_string(),
                    cell(r.pull_only),
                    cell(r.push_only),
                    cell(r.tuned),
                ]);
            }
            save(name, &t);
        }
    }
    if want("fig9") {
        let left = fig09::run(16_384, &[2, 4, 8], false);
        fig09::print("Figure 9 (left): PageRank speedup, sim'd HW", &left);
        let right = fig09::run(8_192, &[2, 4, 8, 16], true);
        fig09::print("Figure 9 (right): PageRank speedup, dev platform", &right);
        for (name, fig) in [("fig09_left_hw", &left), ("fig09_right_dev", &right)] {
            let mut t = CsvTable::new(&["nodes", "shm", "bulk", "fine_grain"]);
            for r in &fig.rows {
                t.row(&[
                    r.parallelism.to_string(),
                    cell(r.shm),
                    cell(r.bulk),
                    cell(r.fine),
                ]);
            }
            save(name, &t);
        }
    }
    if want("table2") {
        let cols = table2::run();
        table2::print(&cols);
        let mut t = CsvTable::new(&[
            "transport",
            "max_bw_gbps",
            "read_rtt_us",
            "fetch_add_us",
            "mops",
        ]);
        for c in &cols {
            t.row(&[
                c.name.to_string(),
                cell(c.max_bw_gbps),
                cell(c.read_rtt.as_us_f64()),
                cell(c.fetch_add.as_us_f64()),
                cell(c.mops),
            ]);
        }
        save("table2_vs_rdma", &t);
    }
    if want("ablations") {
        ablations::print("CT$", &ablations::ct_cache());
        ablations::print("MAQ depth", &ablations::maq_depth());
        ablations::print("unroll initiation interval", &ablations::unroll_interval());
        ablations::print("fabric topology", &ablations::topology());
        ablations::print("WQ poll cadence", &ablations::poll_interval());
    }
    // Simulating a traced rack is far heavier than every other figure,
    // so `trace` runs only when named explicitly.
    if args.iter().any(|a| a == "trace") {
        let text = match &trace_file {
            Some(path) => std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display())),
            None => showcase_trace(),
        };
        let doc = tracefig::parse_trace(&text).expect("trace parses");
        print!("{}", tracefig::render_heatmap(&doc));
        println!();
        print!("{}", tracefig::render_timeline(&doc));
        save("trace_link_heatmap", &tracefig::heatmap_csv(&doc));
        save("trace_timeline", &tracefig::timeline_csv(&doc));
    }
    // Driving the KV rack over three backends is likewise too heavy for
    // the default run, so `kv` also runs only when named.
    if args.iter().any(|a| a == "kv") {
        let doc = match &kv_report {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
                sonuma_bench::json::Json::parse(&text).expect("report parses")
            }
            None => showcase_kv_report(),
        };
        let runs = kvfig::kv_runs(&doc);
        assert!(!runs.is_empty(), "report carries no kv sections");
        print!("{}", kvfig::render_crossover(&runs));
        println!();
        print!("{}", kvfig::render_slo(&runs));
        save("kv_crossover", &kvfig::crossover_csv(&runs));
        save("kv_slo", &kvfig::slo_csv(&runs));
    }
    if want("pipelines") {
        let rows = pipeline_counters();
        sonuma_bench::report::print_pipeline_stats(
            "RMC pipeline counters (4 nodes, neighbor read stream)",
            &rows,
        );
        save(
            "pipeline_counters",
            &sonuma_bench::report::pipeline_stats_table(&rows),
        );
    }
}

/// Runs the canned `rack1024-nodekill` scenario with tracing armed and
/// returns its trace: 16 nodes die at 30 us and restart at 50 us, so
/// the timeline shows the completion-rate dip and the climb back — the
/// flight recorder's showcase.
fn showcase_trace() -> String {
    use sonuma_bench::scenario::{self, TraceSpec};

    let mut spec = scenario::rack1024_nodekill_spec();
    spec.trace = Some(TraceSpec {
        interval_us: 5.0,
        ..TraceSpec::default()
    });
    eprintln!(
        "tracing {} (pass --trace-file to skip the run)...",
        spec.name
    );
    let result = scenario::run_spec_once(&spec);
    result
        .runs
        .into_iter()
        .find_map(|r| r.trace)
        .expect("soNUMA run produced a trace")
        .text
}

/// Runs the canned `rack512-kv` scenario — all three backends — and
/// returns its report: the per-backend GET p99 columns of the crossover
/// table come straight from the three runs' `kv` sections.
fn showcase_kv_report() -> sonuma_bench::json::Json {
    use sonuma_bench::scenario;

    let spec = scenario::rack512_kv_spec();
    eprintln!(
        "running {} on all backends (pass --kv-report to skip the run)...",
        spec.name
    );
    scenario::report(&scenario::run_specs(&[spec]))
}

/// Drives a short all-nodes read stream over the full machine and
/// snapshots every node's RGP/RRPP/RCP counters.
fn pipeline_counters() -> Vec<(String, sonuma_core::PipelineStats)> {
    use sonuma_core::{NodeId, RemoteBackend, RemoteRequest, SonumaBackend};

    let nodes = 4u16;
    let mut b = SonumaBackend::simulated_hardware(nodes as usize, 1 << 20);
    for n in 0..nodes {
        for i in 0..32u64 {
            let dst = NodeId((n + 1) % nodes);
            b.post(NodeId(n), RemoteRequest::read(dst, (i % 16) * 1024, 1024))
                .expect("32 posts fit a 64-entry WQ");
        }
    }
    while b.advance() {}
    let mut rows: Vec<(String, sonuma_core::PipelineStats)> = (0..nodes)
        .map(|n| (format!("n{n}"), b.pipeline_stats(NodeId(n))))
        .collect();
    rows.push(("total".to_string(), b.total_pipeline_stats()));
    rows
}
