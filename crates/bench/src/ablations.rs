//! Ablation sweeps over the RMC design points the paper calls out (§4.3,
//! §8): the CT$ lookaside, MAQ depth, unroll initiation interval, fabric
//! topology, and WQ poll cadence.

use sonuma_core::{SimTime, SystemBuilder};
use sonuma_fabric::FabricConfig;

use crate::workloads::{run_async_read, run_sync_read, READ_REGION_BYTES};

/// One ablation data point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Human-readable setting.
    pub setting: String,
    /// 64 B read latency.
    pub latency: SimTime,
    /// 8 KB single-sided bandwidth, Gbps.
    pub gbps: f64,
}

fn measure(tune: impl Fn(&mut sonuma_core::MachineConfig) + Copy) -> Point {
    let build = || {
        SystemBuilder::simulated_hardware(2)
            .segment_len(READ_REGION_BYTES + 4096)
            .tune(tune)
            .build()
    };
    let latency = run_sync_read(&mut build(), 64, false);
    let (gbps, _) = run_async_read(&mut build(), 8192, false);
    Point {
        setting: String::new(),
        latency,
        gbps,
    }
}

/// CT$ enabled vs. disabled (every RRPP request pays the CT fetch).
pub fn ct_cache() -> Vec<Point> {
    [0usize, 8]
        .iter()
        .map(|&entries| {
            let mut p = measure(move |c| c.rmc.ct_cache_entries = entries);
            p.setting = format!("CT$ entries = {entries}");
            p
        })
        .collect()
}

/// MAQ depth sweep: fewer slots throttle the RMC's memory-level
/// parallelism and thus streaming bandwidth.
pub fn maq_depth() -> Vec<Point> {
    [2usize, 8, 32]
        .iter()
        .map(|&entries| {
            let mut p = measure(move |c| c.rmc.maq_entries = entries);
            p.setting = format!("MAQ entries = {entries}");
            p
        })
        .collect()
}

/// Unroll initiation interval: hardware (1 ns) vs. progressively more
/// software-like unrolling — the dev platform's bottleneck (§7.2).
pub fn unroll_interval() -> Vec<Point> {
    [1u64, 20, 270]
        .iter()
        .map(|&ns| {
            let mut p = measure(move |c| c.rmc.unroll_interval = SimTime::from_ns(ns));
            p.setting = format!("unroll interval = {ns} ns");
            p
        })
        .collect()
}

/// Crossbar (Table 1) vs. 2D torus (the rack-scale option of §3/§6) at the
/// same node count.
pub fn topology() -> Vec<Point> {
    let mut crossbar = measure(|_| {});
    crossbar.setting = "crossbar, 50 ns".into();
    let mut torus = measure(|c| c.fabric = FabricConfig::torus2d(2, 1));
    torus.setting = "2x1 torus, 15 ns/hop".into();
    vec![crossbar, torus]
}

/// WQ poll cadence: the RGP's detection latency contribution.
pub fn poll_interval() -> Vec<Point> {
    [2u64, 10, 100]
        .iter()
        .map(|&ns| {
            let mut p = measure(move |c| c.rmc.poll_interval = SimTime::from_ns(ns));
            p.setting = format!("poll interval = {ns} ns");
            p
        })
        .collect()
}

/// Prints one ablation group.
pub fn print(title: &str, points: &[Point]) {
    println!("\n=== Ablation: {title} ===");
    println!(
        "{:<28} {:>14} {:>14}",
        "setting", "64B lat(ns)", "8KB BW(Gbps)"
    );
    for p in points {
        println!(
            "{:<28} {:>14.1} {:>14.1}",
            p.setting,
            p.latency.as_ns_f64(),
            p.gbps
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maq_depth_throttles_bandwidth() {
        let points = maq_depth();
        assert!(
            points[0].gbps < points[2].gbps * 0.7,
            "2-entry MAQ must bottleneck streaming: {:?}",
            points.iter().map(|p| p.gbps).collect::<Vec<_>>()
        );
    }

    #[test]
    fn software_unrolling_kills_bandwidth() {
        let points = unroll_interval();
        assert!(points[2].gbps < 3.0, "270 ns unrolling ~ dev platform");
        assert!(
            points[0].gbps > 30.0,
            "hardware unrolling sustains DRAM-class BW"
        );
    }

    #[test]
    fn slower_polling_adds_latency() {
        let points = poll_interval();
        assert!(points[2].latency > points[0].latency);
    }
}
