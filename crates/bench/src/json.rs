//! A minimal, dependency-free JSON value: ordered objects, deterministic
//! rendering, and a strict parser.
//!
//! The workspace builds with no network access, so `serde_json` is out of
//! reach; this module implements exactly the slice of JSON the benchmark
//! harness needs to emit `BENCH.json`, validate its schema, and compare a
//! run against the checked-in `bench/baseline.json`. Objects preserve
//! insertion order (they are `Vec<(String, Json)>`), which is what makes
//! two identical runs render byte-identical reports.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: an integer member with whole-number value.
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Convenience: a float member.
    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: a string member.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Renders pretty-printed JSON with two-space indentation and a
    /// trailing newline (stable across runs: objects keep insertion order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_number(out, *x),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a byte offset plus message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN; degrade explicitly
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x:.6}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(&b) => {
                // Consume one multi-byte UTF-8 scalar. The sequence length
                // comes from the lead byte; validating just that slice
                // keeps string parsing linear (re-validating the whole
                // remaining input here made parsing a rack8192-sized
                // report quadratic).
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let scalar = bytes.get(*pos..*pos + len).ok_or("unterminated string")?;
                let c = std::str::from_utf8(scalar)
                    .map_err(|_| "invalid UTF-8")?
                    .chars()
                    .next()
                    .ok_or("unterminated string")?;
                out.push(c);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: &[(&str, Json)]) -> Json {
        Json::Obj(
            members
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn render_parse_roundtrip() {
        let doc = obj(&[
            ("schema", Json::Str("probe/v1".into())),
            ("count", Json::Num(3.0)),
            ("rate", Json::Num(1.25)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\\c\n".into())]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn rendering_is_deterministic() {
        let doc = obj(&[("b", Json::Num(2.0)), ("a", Json::Num(1.0))]);
        assert_eq!(doc.render(), doc.render());
        // Insertion order preserved, not sorted.
        let text = doc.render();
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn accessors() {
        let doc = obj(&[
            ("n", Json::Num(42.0)),
            ("f", Json::Num(0.5)),
            ("s", Json::Str("x".into())),
        ]);
        assert_eq!(doc.u64_of("n"), Some(42));
        assert_eq!(doc.u64_of("f"), None, "fractional is not u64");
        assert_eq!(doc.f64_of("f"), Some(0.5));
        assert_eq!(doc.str_of("s"), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let mut s = String::new();
        render_number(&mut s, 1_000_000.0);
        assert_eq!(s, "1000000");
        let mut s = String::new();
        render_number(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }
}
