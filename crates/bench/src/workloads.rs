//! Reusable measurement processes for the microbenchmarks.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_core::{
    drain_completions, ApiError, AppProcess, NodeApi, NodeId, QpId, SimTime, SonumaSystem, Step,
    VAddr, Wake,
};

/// Shared measurement cell.
pub type Shared<T> = Rc<RefCell<T>>;

/// Remote region the read microbenchmarks stride through; larger than the
/// 4 MB LLC so repeated reads keep missing, per §7.2 ("the buffer size
/// exceeds the LLC capacity in both setups").
pub const READ_REGION_BYTES: u64 = 8 << 20;

/// Outcome of a synchronous-read latency run.
#[derive(Debug, Clone, Default)]
pub struct LatencyOut {
    /// Mean steady-state latency over the measured repetitions.
    pub mean: SimTime,
    /// Repetitions measured (after warm-up).
    pub measured: u32,
}

/// Issues synchronous remote reads of `size` bytes, striding through a
/// large remote region; reports the mean latency of the post-warm-up reps.
pub struct SyncReader {
    qp: QpId,
    peer: NodeId,
    size: u64,
    warmup: u32,
    reps: u32,
    completed: u32,
    buf: VAddr,
    posted_at: SimTime,
    sum_ps: u64,
    out: Shared<LatencyOut>,
}

impl SyncReader {
    /// Creates a reader for `reps` measured reads after `warmup` unmeasured
    /// ones.
    pub fn new(
        qp: QpId,
        peer: NodeId,
        size: u64,
        warmup: u32,
        reps: u32,
        out: Shared<LatencyOut>,
    ) -> Self {
        SyncReader {
            qp,
            peer,
            size,
            warmup,
            reps,
            completed: 0,
            buf: VAddr::new(0),
            posted_at: SimTime::ZERO,
            sum_ps: 0,
            out,
        }
    }

    fn offset(&self) -> u64 {
        (self.completed as u64 * self.size) % (READ_REGION_BYTES - self.size)
    }

    fn post(&mut self, api: &mut NodeApi<'_>) {
        self.posted_at = api.now();
        let off = self.offset() / 64 * 64;
        api.post_read(
            self.qp,
            self.peer,
            sonuma_core::DEFAULT_CTX,
            off,
            self.buf,
            self.size,
        )
        .expect("sync read post");
    }
}

impl AppProcess for SyncReader {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                self.buf = api.heap_alloc(self.size).unwrap();
                self.post(api);
                Step::WaitCq(self.qp)
            }
            Wake::CqReady(comps) => {
                assert_eq!(comps.len(), 1, "synchronous issue");
                assert!(comps[0].status.is_ok());
                let rtt = api.now() - self.posted_at;
                if self.completed >= self.warmup {
                    self.sum_ps += rtt.as_ps();
                }
                self.completed += 1;
                if self.completed == self.warmup + self.reps {
                    let mut o = self.out.borrow_mut();
                    o.mean = SimTime::from_ps(self.sum_ps / self.reps as u64);
                    o.measured = self.reps;
                    return Step::Done;
                }
                self.post(api);
                Step::WaitCq(self.qp)
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

/// Outcome of an asynchronous streaming run.
#[derive(Debug, Clone, Default)]
pub struct StreamOut {
    /// Payload bytes moved by measured operations.
    pub bytes: u64,
    /// Operations completed.
    pub ops: u64,
    /// First measured post time.
    pub started: SimTime,
    /// Last completion time.
    pub finished: SimTime,
}

impl StreamOut {
    /// Achieved bandwidth in Gbps.
    pub fn gbps(&self) -> f64 {
        sonuma_sim::stats::gbps(self.bytes, self.finished.saturating_sub(self.started))
    }

    /// Achieved operation rate (ops/s).
    pub fn ops_per_sec(&self) -> f64 {
        sonuma_sim::stats::ops_per_sec(self.ops, self.finished.saturating_sub(self.started))
    }
}

/// Issues pipelined asynchronous remote reads (the Fig. 4 issue loop):
/// keeps the WQ as full as possible until `target` operations complete.
pub struct AsyncReader {
    qp: QpId,
    peer: NodeId,
    size: u64,
    target: u64,
    issued: u64,
    completed: u64,
    lbuf: VAddr,
    out: Shared<StreamOut>,
}

impl AsyncReader {
    /// Creates a reader that completes `target` reads of `size` bytes.
    pub fn new(qp: QpId, peer: NodeId, size: u64, target: u64, out: Shared<StreamOut>) -> Self {
        AsyncReader {
            qp,
            peer,
            size,
            target,
            issued: 0,
            completed: 0,
            lbuf: VAddr::new(0),
            out,
        }
    }

    fn pump(&mut self, api: &mut NodeApi<'_>) -> Step {
        while self.issued < self.target {
            let off = (self.issued * self.size) % (READ_REGION_BYTES - self.size) / 64 * 64;
            let slot = api.next_wq_index(self.qp) as u64;
            let buf = VAddr::new(self.lbuf.raw() + slot * self.size);
            match api.post_read(
                self.qp,
                self.peer,
                sonuma_core::DEFAULT_CTX,
                off,
                buf,
                self.size,
            ) {
                Ok(_) => {
                    if self.issued == 0 {
                        self.out.borrow_mut().started = api.now();
                    }
                    self.issued += 1;
                }
                Err(ApiError::WqFull) => return Step::WaitCq(self.qp),
                Err(e) => panic!("async post failed: {e}"),
            }
        }
        if self.completed < self.target {
            return Step::WaitCq(self.qp);
        }
        Step::Done
    }
}

impl AppProcess for AsyncReader {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.lbuf = api
                .heap_alloc(api.qp_capacity(self.qp) as u64 * self.size)
                .unwrap();
        }
        let comps = drain_completions(api, &why, self.qp);
        let callback = api.software().callback_cost;
        for c in &comps {
            assert!(c.status.is_ok());
            api.compute(callback); // per-request software overhead (§7.5)
            self.completed += 1;
            let mut o = self.out.borrow_mut();
            o.ops += 1;
            o.bytes += self.size;
            o.finished = api.now();
        }
        self.pump(api)
    }
}

/// Issues synchronous remote fetch-and-adds; reports mean latency
/// (Table 2's atomic row).
pub struct AtomicPinger {
    qp: QpId,
    peer: NodeId,
    warmup: u32,
    reps: u32,
    completed: u32,
    buf: VAddr,
    posted_at: SimTime,
    sum_ps: u64,
    out: Shared<LatencyOut>,
}

impl AtomicPinger {
    /// Creates a fetch-and-add pinger.
    pub fn new(qp: QpId, peer: NodeId, warmup: u32, reps: u32, out: Shared<LatencyOut>) -> Self {
        AtomicPinger {
            qp,
            peer,
            warmup,
            reps,
            completed: 0,
            buf: VAddr::new(0),
            posted_at: SimTime::ZERO,
            sum_ps: 0,
            out,
        }
    }

    fn post(&mut self, api: &mut NodeApi<'_>) {
        self.posted_at = api.now();
        api.post_fetch_add(self.qp, self.peer, sonuma_core::DEFAULT_CTX, 0, self.buf, 1)
            .expect("fetch-add post");
    }
}

impl AppProcess for AtomicPinger {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                self.buf = api.heap_alloc(64).unwrap();
                self.post(api);
                Step::WaitCq(self.qp)
            }
            Wake::CqReady(comps) => {
                assert!(comps[0].status.is_ok());
                let rtt = api.now() - self.posted_at;
                if self.completed >= self.warmup {
                    self.sum_ps += rtt.as_ps();
                }
                self.completed += 1;
                if self.completed == self.warmup + self.reps {
                    let mut o = self.out.borrow_mut();
                    o.mean = SimTime::from_ps(self.sum_ps / self.reps as u64);
                    o.measured = self.reps;
                    return Step::Done;
                }
                self.post(api);
                Step::WaitCq(self.qp)
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

/// Spawns `SyncReader`s per `double_sided` and runs to completion,
/// returning the node-0 reader's mean latency.
pub fn run_sync_read(system: &mut SonumaSystem, size: u64, double_sided: bool) -> SimTime {
    let out0: Shared<LatencyOut> = Rc::new(RefCell::new(LatencyOut::default()));
    let qp0 = system.create_qp(NodeId(0), 0);
    system.spawn(
        NodeId(0),
        0,
        Box::new(SyncReader::new(qp0, NodeId(1), size, 4, 12, out0.clone())),
    );
    if double_sided {
        let out1: Shared<LatencyOut> = Rc::new(RefCell::new(LatencyOut::default()));
        let qp1 = system.create_qp(NodeId(1), 0);
        system.spawn(
            NodeId(1),
            0,
            Box::new(SyncReader::new(qp1, NodeId(0), size, 4, 12, out1)),
        );
    }
    system.run();
    let mean = out0.borrow().mean;
    mean
}

/// Spawns `AsyncReader`s per `double_sided` and runs to completion,
/// returning aggregate achieved bandwidth in Gbps and node-0 ops/s.
pub fn run_async_read(system: &mut SonumaSystem, size: u64, double_sided: bool) -> (f64, f64) {
    let ops = (READ_REGION_BYTES / 2 / size).clamp(512, 16_384);
    let out0: Shared<StreamOut> = Rc::new(RefCell::new(StreamOut::default()));
    let qp0 = system.create_qp(NodeId(0), 0);
    system.spawn(
        NodeId(0),
        0,
        Box::new(AsyncReader::new(qp0, NodeId(1), size, ops, out0.clone())),
    );
    let out1: Shared<StreamOut> = Rc::new(RefCell::new(StreamOut::default()));
    if double_sided {
        let qp1 = system.create_qp(NodeId(1), 0);
        system.spawn(
            NodeId(1),
            0,
            Box::new(AsyncReader::new(qp1, NodeId(0), size, ops, out1.clone())),
        );
    }
    system.run();
    let gbps = out0.borrow().gbps()
        + if double_sided {
            out1.borrow().gbps()
        } else {
            0.0
        };
    let iops = out0.borrow().ops_per_sec();
    (gbps, iops)
}
