//! Figure 7: remote read latency and bandwidth on both platforms.
//!
//! * 7a — synchronous read latency vs. request size, simulated hardware,
//!   single- and double-sided (paper: ~300 ns at 64 B, within 4x of local
//!   DRAM).
//! * 7b — asynchronous read bandwidth (paper: 10 M ops/s at 64 B;
//!   9.6 GB/s ≈ 77 Gbps at 8 KB; double-sided doubles it).
//! * 7c — latency on the development platform (paper: 1.5 µs base, rising
//!   steeply with size as RMCemu unrolls in software).

use sonuma_core::{SimTime, SystemBuilder};

use crate::workloads::{run_async_read, run_sync_read, READ_REGION_BYTES};
use crate::SWEEP_SIZES;

/// Which platform preset to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Cycle-approximate hardware model (Table 1).
    SimulatedHardware,
    /// RMCemu-style software RMC (§7.1).
    DevPlatform,
}

fn builder(platform: Platform) -> SystemBuilder {
    let b = match platform {
        Platform::SimulatedHardware => SystemBuilder::simulated_hardware(2),
        Platform::DevPlatform => SystemBuilder::dev_platform(2),
    };
    b.segment_len(READ_REGION_BYTES + 4096).qp_entries(64)
}

/// One latency row.
#[derive(Debug, Clone, Copy)]
pub struct LatencyRow {
    /// Request size in bytes.
    pub size: u64,
    /// Single-sided steady-state latency.
    pub single: SimTime,
    /// Double-sided steady-state latency.
    pub double: SimTime,
}

/// One bandwidth row.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthRow {
    /// Request size in bytes.
    pub size: u64,
    /// Single-sided aggregate bandwidth, Gbps.
    pub single_gbps: f64,
    /// Double-sided aggregate bandwidth, Gbps.
    pub double_gbps: f64,
    /// Single-sided operation rate, ops/s.
    pub iops: f64,
}

/// Figs. 7a/7c: the latency sweep on `platform`.
pub fn latency(platform: Platform) -> Vec<LatencyRow> {
    SWEEP_SIZES
        .iter()
        .map(|&size| {
            let single = run_sync_read(&mut builder(platform).build(), size, false);
            let double = run_sync_read(&mut builder(platform).build(), size, true);
            LatencyRow {
                size,
                single,
                double,
            }
        })
        .collect()
}

/// Fig. 7b: the bandwidth sweep on `platform`.
pub fn bandwidth(platform: Platform) -> Vec<BandwidthRow> {
    SWEEP_SIZES
        .iter()
        .map(|&size| {
            let (single_gbps, iops) = run_async_read(&mut builder(platform).build(), size, false);
            let (double_gbps, _) = run_async_read(&mut builder(platform).build(), size, true);
            BandwidthRow {
                size,
                single_gbps,
                double_gbps,
                iops,
            }
        })
        .collect()
}

/// Prints Fig. 7a or 7c.
pub fn print_latency(platform: Platform, rows: &[LatencyRow]) {
    let (name, paper) = match platform {
        Platform::SimulatedHardware => (
            "Figure 7a: remote read latency (sim'd HW)",
            "paper: ~300 ns @64 B (~4x local DRAM); double-sided worse at large sizes",
        ),
        Platform::DevPlatform => (
            "Figure 7c: remote read latency (dev platform)",
            "paper: ~1.5 us base, rising steeply with request size",
        ),
    };
    println!("\n=== {name} ===");
    println!("{paper}");
    println!(
        "{:>10} {:>16} {:>16}",
        "size(B)", "single(us)", "double(us)"
    );
    for r in rows {
        println!(
            "{:>10} {:>16.3} {:>16.3}",
            r.size,
            r.single.as_us_f64(),
            r.double.as_us_f64()
        );
    }
}

/// Prints Fig. 7b.
pub fn print_bandwidth(rows: &[BandwidthRow]) {
    println!("\n=== Figure 7b: remote read bandwidth (sim'd HW) ===");
    println!("paper: 10M ops/s @64 B; ~77 Gbps (9.6 GB/s) @8 KB; double-sided ~2x");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "size(B)", "single(Gbps)", "double(Gbps)", "Mops/s"
    );
    for r in rows {
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>14.2}",
            r.size,
            r.single_gbps,
            r.double_gbps,
            r.iops / 1e6
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_64b_is_about_4x_local_dram() {
        let rows = latency(Platform::SimulatedHardware);
        let r64 = rows[0];
        let ns = r64.single.as_ns_f64();
        // Local DRAM is ~65 ns in the model; the paper claims ~4x.
        assert!(
            (200.0..450.0).contains(&ns),
            "64 B single-sided latency {ns} ns"
        );
    }

    #[test]
    fn dev_platform_latency_grows_with_unrolling() {
        let rows = latency(Platform::DevPlatform);
        let first = rows[0].single.as_us_f64();
        let last = rows.last().unwrap().single.as_us_f64();
        assert!((1.2..2.2).contains(&first), "dev 64 B latency {first} us");
        assert!(
            last > first * 10.0,
            "unrolling dominates: {last} vs {first}"
        );
    }

    #[test]
    fn bandwidth_shape_matches_7b() {
        let rows = bandwidth(Platform::SimulatedHardware);
        let r64 = rows[0];
        assert!(
            (7.0..14.0).contains(&(r64.iops / 1e6)),
            "64 B issue rate {} Mops",
            r64.iops / 1e6
        );
        let r8k = rows.last().unwrap();
        assert!(
            (60.0..85.0).contains(&r8k.single_gbps),
            "8 KB single-sided {} Gbps (paper ~77)",
            r8k.single_gbps
        );
        let doubling = r8k.double_gbps / r8k.single_gbps;
        assert!(
            (1.6..2.2).contains(&doubling),
            "double-sided scaling {doubling}"
        );
    }
}
