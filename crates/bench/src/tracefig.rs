//! Flight-recorder trace consumers: the JSON-lines parser, the
//! Chrome-trace converter, and the two trace figures (link-utilization
//! heatmap, stall/recovery timeline).
//!
//! The trace *writer* lives in `sonuma-trace` and knows nothing about
//! JSON parsing; this module is the other direction — it reads a trace
//! file back through the bench's own [`Json`] layer, so the converter
//! and figures work on any saved `--trace-out` artifact, not just an
//! in-process recorder.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::report::CsvTable;

/// One parsed `"rec":"link"` line.
#[derive(Debug, Clone, Copy)]
pub struct LinkRec {
    /// Window end, ps.
    pub t_ps: u64,
    /// Sending node.
    pub src: u16,
    /// Receiving node.
    pub dst: u16,
    /// Bytes serialized during the window.
    pub bytes: u64,
    /// Packets serialized during the window.
    pub packets: u64,
    /// Credit stalls during the window.
    pub credit_stalls: u64,
}

/// One parsed `"rec":"node"` line (window deltas plus the ITT gauge).
#[derive(Debug, Clone, Copy)]
pub struct NodeRec {
    /// Window end, ps.
    pub t_ps: u64,
    /// The node.
    pub node: u16,
    /// RGP requests unrolled during the window.
    pub rgp_requests: u64,
    /// RRPP packets served during the window.
    pub rrpp_served: u64,
    /// Operations completed during the window.
    pub rcp_completions: u64,
    /// RGP stalls on a full ITT during the window.
    pub rgp_itt_stalls: u64,
    /// Posts rejected on a full WQ during the window.
    pub api_wq_full: u64,
    /// ITT entries in flight at the window end.
    pub itt_in_flight: u64,
    /// Timeouts fired during the window.
    pub rgp_timeouts: u64,
    /// Lines retransmitted during the window.
    pub rgp_retransmits: u64,
}

/// One parsed `"rec":"tenant"` line.
#[derive(Debug, Clone, Copy)]
pub struct TenantRec {
    /// Window end, ps.
    pub t_ps: u64,
    /// The tenant.
    pub tenant: u32,
    /// Completions during the window.
    pub completions: u64,
    /// p99 latency upper bound, ps.
    pub p99_ps: u64,
}

/// One parsed `"rec":"fault"` line.
#[derive(Debug, Clone)]
pub struct FaultRec {
    /// Scheduled instant (transitions) or window end (counter deltas), ps.
    pub t_ps: u64,
    /// Event name (`link_kill`, `timeouts`, ...).
    pub kind: String,
    /// First endpoint, 0 when unused.
    pub a: u16,
    /// Second endpoint, 0 when unused.
    pub b: u16,
    /// Delta count (1 for transitions).
    pub count: u64,
}

/// A fully parsed trace file.
#[derive(Debug, Default)]
pub struct TraceDoc {
    /// Scenario name from the header.
    pub scenario: String,
    /// Backend label from the header.
    pub backend: String,
    /// Machine size from the header.
    pub nodes: u64,
    /// Sampling cadence from the header, ps.
    pub interval_ps: u64,
    /// Link windows, in file order (sorted by time).
    pub links: Vec<LinkRec>,
    /// Node windows, in file order.
    pub node_recs: Vec<NodeRec>,
    /// Tenant windows, in file order.
    pub tenants: Vec<TenantRec>,
    /// Fault events, in file order.
    pub faults: Vec<FaultRec>,
}

/// Parses a JSON-lines trace produced by `--trace-out`.
///
/// # Errors
///
/// Returns a one-line description naming the offending line on malformed
/// input or a schema the parser does not understand.
pub fn parse_trace(text: &str) -> Result<TraceDoc, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace file")?;
    let header = Json::parse(header).map_err(|e| format!("line 1: {e}"))?;
    match header.str_of("schema") {
        Some(sonuma_trace::TRACE_SCHEMA) => {}
        other => {
            return Err(format!(
                "trace schema {:?} (this binary reads {:?})",
                other.unwrap_or("<missing>"),
                sonuma_trace::TRACE_SCHEMA
            ))
        }
    }
    let mut doc = TraceDoc {
        scenario: header.str_of("scenario").unwrap_or_default().to_string(),
        backend: header.str_of("backend").unwrap_or_default().to_string(),
        nodes: header.u64_of("nodes").ok_or("header has no nodes")?,
        interval_ps: header
            .u64_of("interval_ps")
            .filter(|&i| i > 0)
            .ok_or("header has no interval_ps")?,
        ..TraceDoc::default()
    };
    for (idx, line) in lines {
        let lineno = idx + 1;
        let rec = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let t_ps = rec
            .u64_of("t_ps")
            .ok_or(format!("line {lineno}: no t_ps"))?;
        let field = |key: &str| rec.u64_of(key).ok_or(format!("line {lineno}: no {key}"));
        match rec.str_of("rec") {
            Some("link") => doc.links.push(LinkRec {
                t_ps,
                src: field("src")? as u16,
                dst: field("dst")? as u16,
                bytes: field("bytes")?,
                packets: field("packets")?,
                credit_stalls: field("credit_stalls")?,
            }),
            Some("node") => doc.node_recs.push(NodeRec {
                t_ps,
                node: field("node")? as u16,
                rgp_requests: field("rgp_requests")?,
                rrpp_served: field("rrpp_served")?,
                rcp_completions: field("rcp_completions")?,
                rgp_itt_stalls: field("rgp_itt_stalls")?,
                api_wq_full: field("api_wq_full")?,
                itt_in_flight: field("itt_in_flight")?,
                rgp_timeouts: field("rgp_timeouts")?,
                rgp_retransmits: field("rgp_retransmits")?,
            }),
            Some("tenant") => doc.tenants.push(TenantRec {
                t_ps,
                tenant: field("tenant")? as u32,
                completions: field("completions")?,
                p99_ps: field("p99_ps")?,
            }),
            Some("fault") => doc.faults.push(FaultRec {
                t_ps,
                kind: rec
                    .str_of("kind")
                    .ok_or(format!("line {lineno}: fault has no kind"))?
                    .to_string(),
                a: field("a")? as u16,
                b: field("b")? as u16,
                count: field("count")?,
            }),
            other => {
                return Err(format!(
                    "line {lineno}: unknown record kind {:?}",
                    other.unwrap_or("<missing>")
                ))
            }
        }
    }
    Ok(doc)
}

/// Whether a fault event is a scheduled transition (rendered as an
/// instant marker) rather than a per-window counter delta.
fn is_transition(kind: &str) -> bool {
    matches!(
        kind,
        "link_kill" | "link_revive" | "node_crash" | "node_restart"
    )
}

/// Converts a parsed trace into Chrome trace-event JSON (load it at
/// `chrome://tracing` or in Perfetto). Per-window activity becomes
/// counter tracks — `fabric`, `pipelines`, `tenants`, and `faults` —
/// and scheduled fault transitions become global instant markers, so
/// the kill/recovery story reads directly off the counter dips.
pub fn chrome_trace(doc: &TraceDoc) -> String {
    let ts = |t_ps: u64| t_ps as f64 / 1e6; // Chrome wants microseconds.
    let mut events: Vec<String> = Vec::new();
    let mut fabric: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for l in &doc.links {
        let e = fabric.entry(l.t_ps).or_default();
        e.0 += l.bytes;
        e.1 += l.packets;
        e.2 += l.credit_stalls;
    }
    for (t, (bytes, packets, stalls)) in fabric {
        events.push(format!(
            "{{\"name\":\"fabric\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"bytes\":{bytes},\"packets\":{packets},\"credit_stalls\":{stalls}}}}}",
            ts(t)
        ));
    }
    let mut pipes: BTreeMap<u64, [u64; 6]> = BTreeMap::new();
    for n in &doc.node_recs {
        let e = pipes.entry(n.t_ps).or_default();
        e[0] += n.rgp_requests;
        e[1] += n.rrpp_served;
        e[2] += n.rcp_completions;
        e[3] += n.rgp_itt_stalls;
        e[4] += n.itt_in_flight;
        e[5] += n.rgp_timeouts + n.rgp_retransmits;
    }
    for (t, [req, served, done, stalls, itt, recov]) in pipes {
        events.push(format!(
            "{{\"name\":\"pipelines\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"rgp_requests\":{req},\"rrpp_served\":{served},\"rcp_completions\":{done},\"itt_stalls\":{stalls},\"itt_in_flight\":{itt},\"recovery\":{recov}}}}}",
            ts(t)
        ));
    }
    let mut flows: BTreeMap<u64, u64> = BTreeMap::new();
    for t in &doc.tenants {
        *flows.entry(t.t_ps).or_default() += t.completions;
    }
    for (t, completions) in flows {
        events.push(format!(
            "{{\"name\":\"tenants\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"completions\":{completions}}}}}",
            ts(t)
        ));
    }
    let mut fault_counters: BTreeMap<u64, BTreeMap<&str, u64>> = BTreeMap::new();
    for f in &doc.faults {
        if is_transition(&f.kind) {
            let name = if f.kind.starts_with("link_") {
                format!("{} {}->{}", f.kind, f.a, f.b)
            } else {
                format!("{} n{}", f.kind, f.a)
            };
            events.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                ts(f.t_ps)
            ));
        } else {
            *fault_counters
                .entry(f.t_ps)
                .or_default()
                .entry(self_kind(&f.kind))
                .or_default() += f.count;
        }
    }
    for (t, counters) in fault_counters {
        let args: Vec<String> = counters
            .into_iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        events.push(format!(
            "{{\"name\":\"faults\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{{}}}}}",
            ts(t),
            args.join(",")
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"scenario\":\"{}\",\"backend\":\"{}\",\"nodes\":{},\"interval_ps\":{}}},\"traceEvents\":[\n{}\n]}}\n",
        doc.scenario,
        doc.backend,
        doc.nodes,
        doc.interval_ps,
        events.join(",\n")
    )
}

/// Interns the small, known set of counter-kind names so the Chrome
/// counter args stay `&'static str` keyed.
fn self_kind(kind: &str) -> &'static str {
    match kind {
        "packets_dropped" => "packets_dropped",
        "packets_corrupted" => "packets_corrupted",
        "packets_rerouted" => "packets_rerouted",
        "packets_unreachable" => "packets_unreachable",
        "crash_drops" => "crash_drops",
        "timeouts" => "timeouts",
        "retransmits" => "retransmits",
        _ => "other",
    }
}

/// Shade ramp for the ASCII heatmap, blank = idle.
const SHADES: &[u8] = b" .:-=+*#%@";

/// Links shown individually in the heatmap; the rest aggregate into a
/// final `other` row so total utilization is never silently dropped.
const HEATMAP_LINKS: usize = 16;

/// The link-utilization heatmap: hottest links as rows, sampling windows
/// as columns, cell shade proportional to bytes moved in that window
/// (scaled against the busiest cell). Returns the printable text; the
/// CSV twin is [`heatmap_csv`].
pub fn render_heatmap(doc: &TraceDoc) -> String {
    let mut windows: Vec<u64> = doc.links.iter().map(|l| l.t_ps).collect();
    windows.sort_unstable();
    windows.dedup();
    let mut totals: BTreeMap<(u16, u16), u64> = BTreeMap::new();
    for l in &doc.links {
        *totals.entry((l.src, l.dst)).or_default() += l.bytes;
    }
    let mut hot: Vec<((u16, u16), u64)> = totals.into_iter().collect();
    hot.sort_by_key(|&((src, dst), bytes)| (std::cmp::Reverse(bytes), src, dst));
    let shown: Vec<(u16, u16)> = hot.iter().take(HEATMAP_LINKS).map(|&(k, _)| k).collect();
    let folded = hot.len().saturating_sub(shown.len());

    // (row, window) -> bytes; row = shown.len() is the fold-in row.
    let col = |t: u64| windows.binary_search(&t).expect("window known");
    let mut grid = vec![vec![0u64; windows.len()]; shown.len() + usize::from(folded > 0)];
    for l in &doc.links {
        let row = shown
            .iter()
            .position(|&k| k == (l.src, l.dst))
            .unwrap_or(shown.len());
        if row < grid.len() {
            grid[row][col(l.t_ps)] += l.bytes;
        }
    }
    // The fold row sums up to `folded` links, so shading it raw would
    // flatten every individual row to blank; show its per-link average
    // instead and scale everything against the same peak.
    if folded > 0 {
        if let Some(fold_row) = grid.last_mut() {
            for cell in fold_row {
                *cell /= folded as u64;
            }
        }
    }
    let peak = grid.iter().flatten().copied().max().unwrap_or(0).max(1);

    let mut out = format!(
        "link utilization heatmap: {} ({} nodes, {} windows of {:.1} us, {} links)\n",
        doc.scenario,
        doc.nodes,
        windows.len(),
        doc.interval_ps as f64 / 1e6,
        hot.len()
    );
    for (row, cells) in grid.iter().enumerate() {
        let label = if row < shown.len() {
            let (src, dst) = shown[row];
            format!("{src:>4}->{dst:<4}")
        } else {
            // Cells on this row are the *average* bytes per folded link.
            format!("+{folded} avg")
        };
        let _ = write!(out, "{label:>10} |");
        for &bytes in cells {
            let shade = (bytes as u128 * (SHADES.len() - 1) as u128 / peak as u128) as usize;
            out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
        }
        out.push_str("|\n");
    }
    if let (Some(&first), Some(&last)) = (windows.first(), windows.last()) {
        let _ = writeln!(
            out,
            "{:>10}  {:.1} us .. {:.1} us, peak cell {} bytes",
            "",
            first as f64 / 1e6,
            last as f64 / 1e6,
            peak
        );
    }
    out
}

/// The heatmap's plottable form: one row per `(window, link)` cell.
pub fn heatmap_csv(doc: &TraceDoc) -> CsvTable {
    let mut t = CsvTable::new(&["t_us", "src", "dst", "bytes", "packets", "credit_stalls"]);
    for l in &doc.links {
        t.row(&[
            format!("{}", l.t_ps as f64 / 1e6),
            l.src.to_string(),
            l.dst.to_string(),
            l.bytes.to_string(),
            l.packets.to_string(),
            l.credit_stalls.to_string(),
        ]);
    }
    t
}

/// Per-window machine-wide activity folded from a trace, the timeline's
/// raw rows.
#[derive(Debug, Default, Clone, Copy)]
pub struct TimelineRow {
    /// Window end, ps.
    pub t_ps: u64,
    /// Operations completed: the tenant stream when the trace has one,
    /// otherwise the nodes' RCP completion deltas.
    pub completions: u64,
    /// Fabric credit stalls.
    pub credit_stalls: u64,
    /// RGP stalls on a full ITT.
    pub itt_stalls: u64,
    /// Timeouts fired.
    pub timeouts: u64,
    /// Lines retransmitted.
    pub retransmits: u64,
}

/// Folds a trace into per-window totals plus the transition markers.
///
/// Node samples land on quantum boundaries, not exact cadence
/// multiples, so every record is bucketed into the cadence window it
/// terminates (`ceil(t / interval) * interval`) — one timeline row per
/// window, not one per distinct sample time.
pub fn timeline_rows(doc: &TraceDoc) -> (Vec<TimelineRow>, Vec<FaultRec>) {
    let mut rows: BTreeMap<u64, TimelineRow> = BTreeMap::new();
    let interval = doc.interval_ps.max(1);
    let window = |t: u64| t.div_ceil(interval) * interval;
    fn at(rows: &mut BTreeMap<u64, TimelineRow>, t: u64) -> &mut TimelineRow {
        let row = rows.entry(t).or_default();
        row.t_ps = t;
        row
    }
    for l in &doc.links {
        at(&mut rows, window(l.t_ps)).credit_stalls += l.credit_stalls;
    }
    let closed_loop = doc.tenants.is_empty();
    for n in &doc.node_recs {
        let row = at(&mut rows, window(n.t_ps));
        if closed_loop {
            row.completions += n.rcp_completions;
        }
        row.itt_stalls += n.rgp_itt_stalls;
        row.timeouts += n.rgp_timeouts;
        row.retransmits += n.rgp_retransmits;
    }
    for t in &doc.tenants {
        at(&mut rows, window(t.t_ps)).completions += t.completions;
    }
    let transitions = doc
        .faults
        .iter()
        .filter(|f| is_transition(&f.kind))
        .cloned()
        .collect();
    (rows.into_values().collect(), transitions)
}

/// The stall/recovery timeline: one line per sampling window with a
/// completion-rate bar, the stall counters, and fault transitions
/// splicing in at their scheduled instants — the `rack1024-nodekill`
/// dip-and-climb rendered as text.
pub fn render_timeline(doc: &TraceDoc) -> String {
    let (rows, mut transitions) = timeline_rows(doc);
    transitions.sort_by_key(|f| f.t_ps);
    let mut transitions = transitions.into_iter().peekable();
    let peak = rows.iter().map(|r| r.completions).max().unwrap_or(0).max(1);
    const BAR: usize = 40;
    let mut out = format!(
        "stall/recovery timeline: {} ({} windows of {:.1} us)\n{:>9} {:<BAR$} {:>9} {:>9} {:>9} {:>8} {:>8}\n",
        doc.scenario,
        rows.len(),
        doc.interval_ps as f64 / 1e6,
        "t_us",
        "completions",
        "ops",
        "cr_stall",
        "itt_stall",
        "timeout",
        "rexmit",
    );
    for row in &rows {
        while transitions.peek().is_some_and(|f| f.t_ps <= row.t_ps) {
            let f = transitions.next().expect("peeked");
            let what = if f.kind.starts_with("link_") {
                format!("{} {}->{}", f.kind, f.a, f.b)
            } else {
                format!("{} n{}", f.kind, f.a)
            };
            let _ = writeln!(out, "{:>9.1} ! {what}", f.t_ps as f64 / 1e6);
        }
        let fill = (row.completions as u128 * BAR as u128 / peak as u128) as usize;
        let _ = writeln!(
            out,
            "{:>9.1} {:<BAR$} {:>9} {:>9} {:>9} {:>8} {:>8}",
            row.t_ps as f64 / 1e6,
            "#".repeat(fill.min(BAR)),
            row.completions,
            row.credit_stalls,
            row.itt_stalls,
            row.timeouts,
            row.retransmits,
        );
    }
    for f in transitions {
        let _ = writeln!(out, "{:>9.1} ! {}", f.t_ps as f64 / 1e6, f.kind);
    }
    out
}

/// The timeline's plottable form.
pub fn timeline_csv(doc: &TraceDoc) -> CsvTable {
    let (rows, _) = timeline_rows(doc);
    let mut t = CsvTable::new(&[
        "t_us",
        "completions",
        "credit_stalls",
        "itt_stalls",
        "timeouts",
        "retransmits",
    ]);
    for r in &rows {
        t.row(&[
            format!("{}", r.t_ps as f64 / 1e6),
            r.completions.to_string(),
            r.credit_stalls.to_string(),
            r.itt_stalls.to_string(),
            r.timeouts.to_string(),
            r.retransmits.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"schema\":\"sonuma-trace/v1\",\"scenario\":\"unit\",\"backend\":\"sonuma\",\"nodes\":4,\"interval_ps\":1000000}\n",
        "{\"t_ps\":1000000,\"rec\":\"fault\",\"kind\":\"link_kill\",\"a\":0,\"b\":1,\"count\":1}\n",
        "{\"t_ps\":1000000,\"rec\":\"link\",\"src\":0,\"dst\":1,\"bytes\":640,\"packets\":10,\"credit_stalls\":2}\n",
        "{\"t_ps\":1000000,\"rec\":\"node\",\"node\":0,\"rgp_requests\":5,\"rrpp_served\":4,\"rcp_completions\":3,\"rgp_itt_stalls\":1,\"api_wq_full\":0,\"itt_in_flight\":2,\"rgp_timeouts\":1,\"rgp_retransmits\":1}\n",
        "{\"t_ps\":2000000,\"rec\":\"fault\",\"kind\":\"timeouts\",\"a\":0,\"b\":0,\"count\":3}\n",
        "{\"t_ps\":2000000,\"rec\":\"tenant\",\"tenant\":7,\"completions\":12,\"p99_ps\":4095}\n",
    );

    #[test]
    fn parses_every_record_kind_and_renders() {
        let doc = parse_trace(SAMPLE).expect("sample parses");
        assert_eq!(doc.nodes, 4);
        assert_eq!(doc.links.len(), 1);
        assert_eq!(doc.node_recs.len(), 1);
        assert_eq!(doc.tenants.len(), 1);
        assert_eq!(doc.faults.len(), 2);

        let chrome = chrome_trace(&doc);
        let parsed = Json::parse(&chrome).expect("chrome trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // fabric + pipelines + tenants + faults counters + 1 instant.
        assert_eq!(events.len(), 5);
        assert!(chrome.contains("\"name\":\"link_kill 0->1\""));

        let heat = render_heatmap(&doc);
        assert!(heat.contains("0->1"), "{heat}");
        let tl = render_timeline(&doc);
        assert!(tl.contains("! link_kill 0->1"), "{tl}");
        assert_eq!(timeline_rows(&doc).0.len(), 2);
    }

    #[test]
    fn rejects_foreign_schemas_and_malformed_lines() {
        assert!(parse_trace("{\"schema\":\"other/v9\"}\n")
            .expect_err("foreign schema")
            .contains("other/v9"));
        let mut broken = String::from(SAMPLE);
        broken.push_str("{\"t_ps\":3,\"rec\":\"mystery\"}\n");
        assert!(parse_trace(&broken)
            .expect_err("unknown record kind")
            .contains("mystery"));
    }
}
