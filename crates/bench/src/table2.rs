//! Table 2: soNUMA (development platform and simulated hardware) versus
//! RDMA over InfiniBand.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_baselines::RdmaFabric;
use sonuma_core::{NodeId, SimTime, SystemBuilder};

use crate::fig07::Platform;
use crate::workloads::{
    run_async_read, run_sync_read, AtomicPinger, LatencyOut, READ_REGION_BYTES,
};

/// One column of Table 2.
#[derive(Debug, Clone)]
pub struct Column {
    /// Transport name.
    pub name: &'static str,
    /// Peak read bandwidth, Gbps.
    pub max_bw_gbps: f64,
    /// 64 B read round trip.
    pub read_rtt: SimTime,
    /// Remote fetch-and-add latency.
    pub fetch_add: SimTime,
    /// Small-operation rate, Mops/s (soNUMA: one QP, one core; RDMA: four).
    pub mops: f64,
}

fn sonuma_column(platform: Platform, name: &'static str) -> Column {
    let build = || {
        let b = match platform {
            Platform::SimulatedHardware => SystemBuilder::simulated_hardware(2),
            Platform::DevPlatform => SystemBuilder::dev_platform(2),
        };
        b.segment_len(READ_REGION_BYTES + 4096)
            .qp_entries(64)
            .build()
    };
    let read_rtt = run_sync_read(&mut build(), 64, false);
    let (max_bw_gbps, _) = run_async_read(&mut build(), 8192, false);
    let (_, iops) = run_async_read(&mut build(), 64, false);

    // Fetch-and-add microbenchmark.
    let mut system = build();
    let out: Rc<RefCell<LatencyOut>> = Rc::new(RefCell::new(LatencyOut::default()));
    let qp = system.create_qp(NodeId(0), 0);
    system.spawn(
        NodeId(0),
        0,
        Box::new(AtomicPinger::new(qp, NodeId(1), 4, 12, out.clone())),
    );
    system.run();
    let fetch_add = out.borrow().mean;

    Column {
        name,
        max_bw_gbps,
        read_rtt,
        fetch_add,
        mops: iops / 1e6,
    }
}

fn rdma_column() -> Column {
    let ib = RdmaFabric::connectx3();
    Column {
        name: "RDMA/IB (ConnectX-3)",
        max_bw_gbps: ib.read_bandwidth_gbps(1 << 20, 4),
        read_rtt: ib.read_latency(64),
        fetch_add: ib.fetch_add_latency(),
        mops: ib.iops(4) / 1e6,
    }
}

/// Produces all three columns.
pub fn run() -> Vec<Column> {
    vec![
        sonuma_column(Platform::DevPlatform, "soNUMA dev platform"),
        sonuma_column(Platform::SimulatedHardware, "soNUMA sim'd HW"),
        rdma_column(),
    ]
}

/// Prints the table with the paper's values alongside.
pub fn print(cols: &[Column]) {
    println!("\n=== Table 2: soNUMA vs RDMA/InfiniBand ===");
    println!("paper:   BW(Gbps) 1.8 / 77 / 50 | RTT(us) 1.5 / 0.3 / 1.19 | F&A(us) 1.5 / 0.3 / 1.15 | Mops 1.97 / 10.9 / 35@4cores");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>10}",
        "transport", "maxBW(Gbps)", "readRTT(us)", "f&a(us)", "Mops/s"
    );
    for c in cols {
        println!(
            "{:<24} {:>12.1} {:>12.2} {:>12.2} {:>10.2}",
            c.name,
            c.max_bw_gbps,
            c.read_rtt.as_us_f64(),
            c.fetch_add.as_us_f64(),
            c.mops
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ordering_matches_paper() {
        let cols = run();
        let (dev, hw, ib) = (&cols[0], &cols[1], &cols[2]);
        // Latency: sim'd HW << RDMA << dev platform.
        assert!(hw.read_rtt < ib.read_rtt, "soNUMA beats RDMA on latency");
        assert!(
            ib.read_rtt.as_us_f64() / hw.read_rtt.as_us_f64() > 3.0,
            "paper: ~4x latency advantage"
        );
        assert!(
            dev.read_rtt > ib.read_rtt,
            "emulation is slower than silicon"
        );
        // Bandwidth: sim'd HW saturates memory, above the PCIe-capped RDMA.
        assert!(hw.max_bw_gbps > ib.max_bw_gbps);
        assert!(dev.max_bw_gbps < 4.0, "dev platform ~1.8 Gbps");
        // Atomics track reads on every platform (§7.4).
        for c in cols.iter() {
            let ratio = c.fetch_add.as_ns_f64() / c.read_rtt.as_ns_f64();
            assert!(
                (0.7..1.3).contains(&ratio),
                "{}: f&a/read = {ratio}",
                c.name
            );
        }
        // Per-core IOPS parity: both ~10 M (RDMA divides its 35 M over 4).
        assert!((7.0..14.0).contains(&hw.mops), "sim'd HW {} Mops", hw.mops);
        assert!(
            (1.0..3.5).contains(&dev.mops),
            "dev platform {} Mops",
            dev.mops
        );
    }
}
