//! Benchmark harness: regenerates every table and figure of the soNUMA
//! evaluation (§7).
//!
//! Each module exposes a `run()` returning structured rows plus a
//! `print()` that renders them next to the paper's reported values. The
//! `gen-figures` binary prints everything; the criterion benches under
//! `benches/` wrap the same functions.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig01`] | Fig. 1 — Netpipe over TCP/IP on Calxeda |
//! | [`fig07`] | Fig. 7 — remote read latency/bandwidth, both platforms |
//! | [`fig08`] | Fig. 8 — send/receive latency/bandwidth, thresholds |
//! | [`fig09`] | Fig. 9 — PageRank speedup, three implementations |
//! | [`table1`] | Table 1 — simulation parameters |
//! | [`table2`] | Table 2 — soNUMA vs. RDMA/InfiniBand |
//! | [`ablations`] | design-point sweeps (CT$, MAQ, unrolling, topology) |
//!
//! Beyond the paper's figures, [`scenario`] is the config-driven harness:
//! declarative [`scenario::ScenarioSpec`]s (flat TOML) executed across all
//! three `RemoteBackend`s by the `sonuma-bench scenario` binary, reported
//! as versioned machine-readable `BENCH.json` ([`json`] is the
//! dependency-free JSON layer underneath), and gated in CI against
//! `bench/baseline.json`.

pub mod ablations;
pub mod fig01;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod json;
pub mod kvfig;
pub mod report;
pub mod scenario;
pub mod table1;
pub mod table2;
pub mod tracefig;
pub mod trafficgen;
pub mod workloads;

/// Request sizes swept by the microbenchmarks (64 B .. 8 KB, as in
/// Figs. 7-8).
pub const SWEEP_SIZES: [u64; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];
