//! Config-driven scenario harness: declarative cluster/workload specs,
//! executed over every [`RemoteBackend`], reported as versioned
//! machine-readable `BENCH.json`.
//!
//! A [`ScenarioSpec`] names everything an experiment needs — node count,
//! fabric topology, platform, backend set, workload mix, operation size,
//! per-node operation count, issue window, and the RNG seed — in a flat
//! TOML file (`key = value` lines only; see [`ScenarioSpec::to_toml`]).
//! The `sonuma-bench scenario` binary sweeps specs, drives each across the
//! requested backends through the transport-agnostic `RemoteBackend`
//! contract, and emits one report containing simulated throughput,
//! p50/p99 latency, per-node RMC pipeline counters (soNUMA runs), and the
//! host-side events/sec that the `bench-smoke` CI lane gates on.
//!
//! Everything except the `wall_*` fields is a pure function of the spec:
//! two runs of the same spec + seed render byte-identical JSON once those
//! fields are stripped, which the determinism test under `tests/` asserts.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use sonuma_baselines::{RdmaBackend, TcpBackend};
use sonuma_core::{
    MachineConfig, NodeId, PipelineStats, RemoteBackend, RemoteRequest, SonumaBackend,
};
use sonuma_fabric::FabricConfig;
use sonuma_sim::stats::LatencyHistogram;
use sonuma_sim::{DetRng, SimTime};

use crate::json::Json;

/// Version tag of the report format (bump on breaking schema changes).
pub const REPORT_SCHEMA: &str = "sonuma-bench.scenario/v1";

/// A transport a scenario runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The full soNUMA machine (`SonumaBackend`).
    Sonuma,
    /// The calibrated ConnectX-3-class RDMA model.
    Rdma,
    /// The calibrated Calxeda TCP/IP model.
    Tcp,
}

impl BackendKind {
    fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sonuma => "sonuma",
            BackendKind::Rdma => "rdma",
            BackendKind::Tcp => "tcp",
        }
    }
}

/// Which backends a spec requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSel {
    /// One specific transport.
    One(BackendKind),
    /// soNUMA, RDMA and TCP (the Table 2 trio).
    All,
}

impl BackendSel {
    /// The concrete backend list, in fixed report order.
    pub fn kinds(self) -> Vec<BackendKind> {
        match self {
            BackendSel::One(k) => vec![k],
            BackendSel::All => vec![BackendKind::Sonuma, BackendKind::Rdma, BackendKind::Tcp],
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            BackendSel::All => "all",
            BackendSel::One(k) => k.as_str(),
        }
    }
}

/// Fabric arrangement for soNUMA runs (the modeled baselines have no
/// topology; they ignore this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Full crossbar, flat inter-node latency (Table 1).
    Crossbar,
    /// 2D torus, `w × h` nodes.
    Torus2d(usize, usize),
    /// 3D torus, `x × y × z` nodes.
    Torus3d(usize, usize, usize),
}

impl TopologySpec {
    fn to_config(self, nodes: usize) -> FabricConfig {
        match self {
            TopologySpec::Crossbar => FabricConfig::paper_crossbar(nodes),
            TopologySpec::Torus2d(w, h) => FabricConfig::torus2d(w, h),
            TopologySpec::Torus3d(x, y, z) => FabricConfig::torus3d(x, y, z),
        }
    }

    fn render(self) -> String {
        match self {
            TopologySpec::Crossbar => "crossbar".to_string(),
            TopologySpec::Torus2d(w, h) => format!("torus2d:{w}x{h}"),
            TopologySpec::Torus3d(x, y, z) => format!("torus3d:{x}x{y}x{z}"),
        }
    }
}

/// Timing platform for soNUMA runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformSpec {
    /// The paper's simulated-hardware platform (Table 1).
    Hardware,
    /// The Xen-based development platform (§7.1).
    Dev,
}

/// Request stream shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Every node reads random offsets on uniformly random peers.
    UniformRead,
    /// Every node streams sequential reads from its ring successor.
    NeighborRead,
    /// Uniform destinations; each operation is a read with probability
    /// `read_fraction`, otherwise a write.
    Mixed,
}

impl WorkloadKind {
    fn as_str(self) -> &'static str {
        match self {
            WorkloadKind::UniformRead => "uniform-read",
            WorkloadKind::NeighborRead => "neighbor-read",
            WorkloadKind::Mixed => "mixed",
        }
    }
}

/// A declarative scenario: everything one benchmark run needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report key; also the baseline-matching key).
    pub name: String,
    /// Cluster size.
    pub nodes: usize,
    /// Fabric arrangement (soNUMA runs).
    pub topology: TopologySpec,
    /// Timing platform (soNUMA runs).
    pub platform: PlatformSpec,
    /// Transports to execute.
    pub backend: BackendSel,
    /// Request stream shape.
    pub workload: WorkloadKind,
    /// Probability an operation is a read (`mixed` workload only).
    pub read_fraction: f64,
    /// Payload bytes per operation (cache-line multiple).
    pub op_bytes: u64,
    /// Operations each node issues.
    pub ops_per_node: u64,
    /// Maximum operations a node keeps in flight.
    pub window: usize,
    /// Per-node globally readable segment size.
    pub segment_bytes: u64,
    /// Seed for every stochastic workload decision.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: String::new(),
            nodes: 0,
            topology: TopologySpec::Crossbar,
            platform: PlatformSpec::Hardware,
            backend: BackendSel::All,
            workload: WorkloadKind::UniformRead,
            read_fraction: 0.5,
            op_bytes: 64,
            ops_per_node: 128,
            window: 16,
            segment_bytes: 1 << 20,
            seed: 42,
        }
    }
}

/// Why a spec failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The text is not valid flat TOML (`line`, `message`).
    Parse(usize, String),
    /// The values are syntactically fine but semantically invalid.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl ScenarioSpec {
    /// Checks every cross-field constraint.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |msg: String| Err(SpecError::Invalid(msg));
        if self.name.is_empty() {
            return err("name must be nonempty".into());
        }
        if self.nodes < 2 {
            return err(format!(
                "nodes = {} (remote ops need at least 2)",
                self.nodes
            ));
        }
        if self.nodes > u16::MAX as usize {
            return err(format!("nodes = {} exceeds the NodeId space", self.nodes));
        }
        match self.topology {
            TopologySpec::Crossbar => {}
            TopologySpec::Torus2d(w, h) => {
                if w * h != self.nodes || w < 2 || h < 2 {
                    return err(format!(
                        "torus2d:{w}x{h} does not arrange {} nodes",
                        self.nodes
                    ));
                }
            }
            TopologySpec::Torus3d(x, y, z) => {
                if x * y * z != self.nodes || x < 2 || y < 2 || z < 2 {
                    return err(format!(
                        "torus3d:{x}x{y}x{z} does not arrange {} nodes",
                        self.nodes
                    ));
                }
            }
        }
        if self.op_bytes == 0 || !self.op_bytes.is_multiple_of(64) || self.op_bytes > 8192 {
            return err(format!(
                "op_bytes = {} (must be a cache-line multiple in 64..=8192)",
                self.op_bytes
            ));
        }
        if self.ops_per_node == 0 {
            return err("ops_per_node must be positive".into());
        }
        if self.window == 0 || self.window > 64 {
            return err(format!("window = {} (must be 1..=64)", self.window));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return err(format!(
                "read_fraction = {} out of [0, 1]",
                self.read_fraction
            ));
        }
        if self.segment_bytes < self.op_bytes * 2 || self.segment_bytes > (1 << 30) {
            return err(format!(
                "segment_bytes = {} (need 2*op_bytes..=1 GiB)",
                self.segment_bytes
            ));
        }
        Ok(())
    }

    /// Renders the spec as flat TOML, the format [`ScenarioSpec::from_toml`]
    /// reads back (round-trip stable).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("# sonuma-bench scenario spec\n");
        out.push_str(&format!("name = \"{}\"\n", self.name));
        out.push_str(&format!("nodes = {}\n", self.nodes));
        out.push_str(&format!("topology = \"{}\"\n", self.topology.render()));
        out.push_str(&format!(
            "platform = \"{}\"\n",
            match self.platform {
                PlatformSpec::Hardware => "hardware",
                PlatformSpec::Dev => "dev",
            }
        ));
        out.push_str(&format!("backend = \"{}\"\n", self.backend.as_str()));
        out.push_str(&format!("workload = \"{}\"\n", self.workload.as_str()));
        out.push_str(&format!("read_fraction = {}\n", self.read_fraction));
        out.push_str(&format!("op_bytes = {}\n", self.op_bytes));
        out.push_str(&format!("ops_per_node = {}\n", self.ops_per_node));
        out.push_str(&format!("window = {}\n", self.window));
        out.push_str(&format!("segment_bytes = {}\n", self.segment_bytes));
        out.push_str(&format!("seed = {}\n", self.seed));
        out
    }

    /// Parses a flat TOML spec (comments and blank lines allowed; every
    /// key checked; unknown keys rejected).
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] on malformed lines, [`SpecError::Invalid`] on
    /// constraint violations.
    pub fn from_toml(text: &str) -> Result<ScenarioSpec, SpecError> {
        let mut spec = ScenarioSpec::default();
        let mut saw_name = false;
        let mut saw_nodes = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parse_err = |msg: &str| SpecError::Parse(lineno, msg.to_string());
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| parse_err("expected `key = value`"))?;
            let key = key.trim();
            let value = parse_scalar(value.trim()).map_err(|m| SpecError::Parse(lineno, m))?;
            match key {
                "name" => {
                    spec.name = value.into_string(lineno, "name")?;
                    saw_name = true;
                }
                "nodes" => {
                    spec.nodes = value.into_u64(lineno, "nodes")? as usize;
                    saw_nodes = true;
                }
                "topology" => {
                    spec.topology = parse_topology(&value.into_string(lineno, "topology")?)
                        .map_err(|m| SpecError::Parse(lineno, m))?;
                }
                "platform" => {
                    spec.platform = match value.into_string(lineno, "platform")?.as_str() {
                        "hardware" => PlatformSpec::Hardware,
                        "dev" => PlatformSpec::Dev,
                        other => {
                            return Err(SpecError::Parse(
                                lineno,
                                format!("unknown platform {other:?} (hardware|dev)"),
                            ))
                        }
                    };
                }
                "backend" => {
                    spec.backend = match value.into_string(lineno, "backend")?.as_str() {
                        "all" => BackendSel::All,
                        "sonuma" => BackendSel::One(BackendKind::Sonuma),
                        "rdma" => BackendSel::One(BackendKind::Rdma),
                        "tcp" => BackendSel::One(BackendKind::Tcp),
                        other => {
                            return Err(SpecError::Parse(
                                lineno,
                                format!("unknown backend {other:?} (sonuma|rdma|tcp|all)"),
                            ))
                        }
                    };
                }
                "workload" => {
                    spec.workload = match value.into_string(lineno, "workload")?.as_str() {
                        "uniform-read" => WorkloadKind::UniformRead,
                        "neighbor-read" => WorkloadKind::NeighborRead,
                        "mixed" => WorkloadKind::Mixed,
                        other => {
                            return Err(SpecError::Parse(
                                lineno,
                                format!(
                                    "unknown workload {other:?} \
                                     (uniform-read|neighbor-read|mixed)"
                                ),
                            ))
                        }
                    };
                }
                "read_fraction" => spec.read_fraction = value.into_f64(lineno, "read_fraction")?,
                "op_bytes" => spec.op_bytes = value.into_u64(lineno, "op_bytes")?,
                "ops_per_node" => spec.ops_per_node = value.into_u64(lineno, "ops_per_node")?,
                "window" => spec.window = value.into_u64(lineno, "window")? as usize,
                "segment_bytes" => spec.segment_bytes = value.into_u64(lineno, "segment_bytes")?,
                "seed" => spec.seed = value.into_u64(lineno, "seed")?,
                other => {
                    return Err(SpecError::Parse(lineno, format!("unknown key {other:?}")));
                }
            }
        }
        if !saw_name {
            return Err(SpecError::Invalid("missing required key `name`".into()));
        }
        if !saw_nodes {
            return Err(SpecError::Invalid("missing required key `nodes`".into()));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Human-readable topology label (`crossbar`, `torus2d:4x4`, ...).
    pub fn topology_label(&self) -> String {
        self.topology.render()
    }

    /// Human-readable workload label.
    pub fn workload_label(&self) -> &'static str {
        self.workload.as_str()
    }

    /// Human-readable backend-selection label.
    pub fn backend_label(&self) -> &'static str {
        self.backend.as_str()
    }

    /// The spec as an ordered JSON object (embedded in the report).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("nodes".into(), Json::Num(self.nodes as f64)),
            ("topology".into(), Json::Str(self.topology.render())),
            (
                "platform".into(),
                Json::Str(
                    match self.platform {
                        PlatformSpec::Hardware => "hardware",
                        PlatformSpec::Dev => "dev",
                    }
                    .into(),
                ),
            ),
            ("backend".into(), Json::Str(self.backend.as_str().into())),
            ("workload".into(), Json::Str(self.workload.as_str().into())),
            ("read_fraction".into(), Json::Num(self.read_fraction)),
            ("op_bytes".into(), Json::Num(self.op_bytes as f64)),
            ("ops_per_node".into(), Json::Num(self.ops_per_node as f64)),
            ("window".into(), Json::Num(self.window as f64)),
            ("segment_bytes".into(), Json::Num(self.segment_bytes as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
        ])
    }
}

/// A scalar TOML value: quoted string or bare number.
enum Scalar {
    Str(String),
    Num(String),
}

impl Scalar {
    fn into_string(self, lineno: usize, key: &str) -> Result<String, SpecError> {
        match self {
            Scalar::Str(s) => Ok(s),
            Scalar::Num(_) => Err(SpecError::Parse(
                lineno,
                format!("{key} must be a quoted string"),
            )),
        }
    }

    fn into_u64(self, lineno: usize, key: &str) -> Result<u64, SpecError> {
        match self {
            Scalar::Num(n) => n
                .parse::<u64>()
                .map_err(|_| SpecError::Parse(lineno, format!("{key} must be an integer"))),
            Scalar::Str(_) => Err(SpecError::Parse(
                lineno,
                format!("{key} must be an unquoted integer"),
            )),
        }
    }

    fn into_f64(self, lineno: usize, key: &str) -> Result<f64, SpecError> {
        match self {
            Scalar::Num(n) => n
                .parse::<f64>()
                .map_err(|_| SpecError::Parse(lineno, format!("{key} must be a number"))),
            Scalar::Str(_) => Err(SpecError::Parse(
                lineno,
                format!("{key} must be an unquoted number"),
            )),
        }
    }
}

fn parse_scalar(value: &str) -> Result<Scalar, String> {
    if let Some(rest) = value.strip_prefix('"') {
        let end = rest.find('"').ok_or("unterminated string")?;
        let tail = rest[end + 1..].trim();
        if !tail.is_empty() && !tail.starts_with('#') {
            return Err(format!("trailing garbage after string: {tail:?}"));
        }
        return Ok(Scalar::Str(rest[..end].to_string()));
    }
    let bare = match value.find('#') {
        Some(i) => value[..i].trim(),
        None => value,
    };
    if bare.is_empty() {
        return Err("empty value".to_string());
    }
    Ok(Scalar::Num(bare.to_string()))
}

fn parse_topology(text: &str) -> Result<TopologySpec, String> {
    if text == "crossbar" {
        return Ok(TopologySpec::Crossbar);
    }
    let dims = |spec: &str| -> Result<Vec<usize>, String> {
        spec.split('x')
            .map(|d| {
                d.parse::<usize>()
                    .map_err(|_| format!("bad dimension {d:?}"))
            })
            .collect()
    };
    if let Some(rest) = text.strip_prefix("torus2d:") {
        let d = dims(rest)?;
        if d.len() != 2 {
            return Err("torus2d needs WxH".to_string());
        }
        return Ok(TopologySpec::Torus2d(d[0], d[1]));
    }
    if let Some(rest) = text.strip_prefix("torus3d:") {
        let d = dims(rest)?;
        if d.len() != 3 {
            return Err("torus3d needs XxYxZ".to_string());
        }
        return Ok(TopologySpec::Torus3d(d[0], d[1], d[2]));
    }
    Err(format!(
        "unknown topology {text:?} (crossbar|torus2d:WxH|torus3d:XxYxZ)"
    ))
}

// ---------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------

/// Metrics of one spec running over one backend.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Transport label (`RemoteBackend::label`).
    pub backend: String,
    /// Operations completed.
    pub ops: u64,
    /// Payload bytes moved by completed operations.
    pub payload_bytes: u64,
    /// Operations that completed with an error status.
    pub errors: u64,
    /// Total simulated time.
    pub sim_time: SimTime,
    /// Completed operations per simulated second.
    pub ops_per_sec: f64,
    /// Payload bandwidth over simulated time, Gbps.
    pub gbps: f64,
    /// Median post-to-completion latency.
    pub p50: SimTime,
    /// 99th-percentile post-to-completion latency.
    pub p99: SimTime,
    /// Mean post-to-completion latency.
    pub mean: SimTime,
    /// Discrete events the backend's engine executed.
    pub events: u64,
    /// Host wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Host-side engine throughput: `events / wall_secs`. This is the
    /// metric the CI bench-smoke lane gates on.
    pub wall_events_per_sec: f64,
    /// Cluster-wide pipeline counters (soNUMA runs only).
    pub pipeline_total: Option<PipelineStats>,
    /// Per-node pipeline counters, indexed by node id (soNUMA runs only).
    pub per_node: Vec<PipelineStats>,
}

/// One executed scenario: the spec plus one run per backend.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The spec that was executed.
    pub spec: ScenarioSpec,
    /// One entry per requested backend, in [`BackendSel::kinds`] order.
    pub runs: Vec<BackendRun>,
}

enum BackendInstance {
    Sonuma(Box<SonumaBackend>),
    Rdma(Box<RdmaBackend>),
    Tcp(Box<TcpBackend>),
}

impl BackendInstance {
    fn build(spec: &ScenarioSpec, kind: BackendKind) -> BackendInstance {
        match kind {
            BackendKind::Sonuma => {
                let mut config = match spec.platform {
                    PlatformSpec::Hardware => MachineConfig::simulated_hardware(spec.nodes),
                    PlatformSpec::Dev => MachineConfig::dev_platform(spec.nodes),
                };
                config.fabric = spec.topology.to_config(spec.nodes);
                BackendInstance::Sonuma(Box::new(SonumaBackend::new(config, spec.segment_bytes)))
            }
            BackendKind::Rdma => BackendInstance::Rdma(Box::new(RdmaBackend::connectx3(
                spec.nodes,
                spec.segment_bytes,
            ))),
            BackendKind::Tcp => BackendInstance::Tcp(Box::new(TcpBackend::calxeda(
                spec.nodes,
                spec.segment_bytes,
            ))),
        }
    }

    fn as_dyn(&mut self) -> &mut dyn RemoteBackend {
        match self {
            BackendInstance::Sonuma(b) => b.as_mut(),
            BackendInstance::Rdma(b) => b.as_mut(),
            BackendInstance::Tcp(b) => b.as_mut(),
        }
    }
}

/// Deterministic per-node request generator.
struct RequestGen {
    rng: DetRng,
    issued: u64,
}

impl RequestGen {
    fn next(&mut self, spec: &ScenarioSpec, node: usize) -> RemoteRequest {
        let i = self.issued;
        self.issued += 1;
        let slots = (spec.segment_bytes - spec.op_bytes) / 64;
        let peer = |rng: &mut DetRng| {
            let d = rng.below(spec.nodes as u64 - 1);
            let d = if d >= node as u64 { d + 1 } else { d };
            NodeId(d as u16)
        };
        match spec.workload {
            WorkloadKind::UniformRead => {
                let dst = peer(&mut self.rng);
                let offset = self.rng.below(slots + 1) * 64;
                RemoteRequest::read(dst, offset, spec.op_bytes)
            }
            WorkloadKind::NeighborRead => {
                let dst = NodeId(((node + 1) % spec.nodes) as u16);
                let offset = (i * spec.op_bytes) % (slots * 64).max(64);
                RemoteRequest::read(dst, offset / 64 * 64, spec.op_bytes)
            }
            WorkloadKind::Mixed => {
                let dst = peer(&mut self.rng);
                let offset = self.rng.below(slots + 1) * 64;
                if self.rng.chance(spec.read_fraction) {
                    RemoteRequest::read(dst, offset, spec.op_bytes)
                } else {
                    let fill = (node as u8) ^ (i as u8) ^ 0xA5;
                    RemoteRequest::write(dst, offset, vec![fill; spec.op_bytes as usize])
                }
            }
        }
    }
}

/// Drives `spec`'s request stream over one backend to completion.
///
/// Latencies are measured post-to-observation: a completion is
/// timestamped with `backend.now()` at the poll following the `advance`
/// burst that executed it, so they are exact for the one-event-per-call
/// baselines and late by at most one burst's simulated span (64 engine
/// events) for soNUMA.
fn drive(spec: &ScenarioSpec, backend: &mut dyn RemoteBackend) -> BackendRun {
    let nodes = spec.nodes;
    let started = Instant::now();
    let mut root = DetRng::seed(spec.seed);
    let mut gens: Vec<RequestGen> = (0..nodes)
        .map(|n| RequestGen {
            rng: root.fork(n as u64),
            issued: 0,
        })
        .collect();
    // token -> (post time ps, payload bytes); filled at post, drained at
    // completion. Never iterated, so the HashMap order cannot leak into
    // the results.
    let mut pending: Vec<HashMap<u64, (u64, u64)>> = (0..nodes).map(|_| HashMap::new()).collect();
    let mut remaining: Vec<u64> = vec![spec.ops_per_node; nodes];
    let mut hist = LatencyHistogram::new();
    let mut ops = 0u64;
    let mut payload_bytes = 0u64;
    let mut errors = 0u64;

    loop {
        let mut posted_any = false;
        for n in 0..nodes {
            while remaining[n] > 0 && pending[n].len() < spec.window {
                let req = gens[n].next(spec, n);
                let bytes = spec.op_bytes;
                match backend.post(NodeId(n as u16), req) {
                    Ok(token) => {
                        pending[n].insert(token, (backend.now().as_ps(), bytes));
                        remaining[n] -= 1;
                        posted_any = true;
                    }
                    Err(sonuma_core::BackendError::Backpressure) => break,
                    Err(e) => panic!("scenario {} post failed on {n}: {e}", spec.name),
                }
            }
        }
        let more = backend.advance();
        for (n, node_pending) in pending.iter_mut().enumerate() {
            for c in backend.poll(NodeId(n as u16)) {
                let (posted_ps, bytes) = node_pending
                    .remove(&c.token)
                    .expect("completion for unknown token");
                hist.record(backend.now().saturating_sub(SimTime::from_ps(posted_ps)));
                ops += 1;
                if c.status.is_ok() {
                    payload_bytes += bytes;
                } else {
                    errors += 1;
                }
            }
        }
        let inflight: usize = pending.iter().map(HashMap::len).sum();
        if !more && !posted_any && inflight == 0 && remaining.iter().all(|&r| r == 0) {
            break;
        }
    }

    let sim_time = backend.now();
    let wall_secs = started.elapsed().as_secs_f64();
    let events = backend.events_processed();
    BackendRun {
        backend: backend.label().to_string(),
        ops,
        payload_bytes,
        errors,
        sim_time,
        ops_per_sec: sonuma_sim::stats::ops_per_sec(ops, sim_time),
        gbps: sonuma_sim::stats::gbps(payload_bytes, sim_time),
        p50: hist.percentile(0.50),
        p99: hist.percentile(0.99),
        mean: hist.mean(),
        events,
        wall_secs,
        wall_events_per_sec: if wall_secs > 0.0 {
            events as f64 / wall_secs
        } else {
            0.0
        },
        // Pipeline counters are attached by `run_spec` for soNUMA runs.
        pipeline_total: None,
        per_node: Vec::new(),
    }
}

/// How many times each (spec, backend) pair is driven for wall-clock
/// timing. The simulated metrics come from the first drive (they are
/// identical across repetitions by construction); the reported
/// `wall_events_per_sec` is the best of the repetitions, the standard
/// antidote to scheduler noise in a CI-gated throughput number.
pub const TIMING_REPS: u32 = 3;

/// Executes one spec over every backend it requests.
///
/// # Panics
///
/// Panics if the spec fails [`ScenarioSpec::validate`] or a post is
/// rejected for a non-backpressure reason (both indicate harness bugs —
/// specs are validated at load time).
pub fn run_spec(spec: &ScenarioSpec) -> ScenarioResult {
    spec.validate().expect("spec validated at load time");
    let mut runs = Vec::new();
    for kind in spec.backend.kinds() {
        let mut instance = BackendInstance::build(spec, kind);
        let mut run = drive(spec, instance.as_dyn());
        if let BackendInstance::Sonuma(b) = &instance {
            run.per_node = (0..spec.nodes)
                .map(|n| b.cluster().pipeline_stats(NodeId(n as u16)))
                .collect();
            run.pipeline_total = Some(b.cluster().total_pipeline_stats());
        }
        for _ in 1..TIMING_REPS {
            let mut retimed = BackendInstance::build(spec, kind);
            let rep = drive(spec, retimed.as_dyn());
            debug_assert_eq!(rep.events, run.events, "repetitions must be identical");
            if rep.wall_events_per_sec > run.wall_events_per_sec {
                run.wall_events_per_sec = rep.wall_events_per_sec;
                run.wall_secs = rep.wall_secs;
            }
        }
        runs.push(run);
    }
    ScenarioResult {
        spec: spec.clone(),
        runs,
    }
}

/// Executes a list of specs in order.
pub fn run_specs(specs: &[ScenarioSpec]) -> Vec<ScenarioResult> {
    specs.iter().map(run_spec).collect()
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

fn stats_json(stats: &PipelineStats) -> Json {
    Json::Obj(
        stats
            .rows()
            .iter()
            .map(|&(name, value)| (name.to_string(), Json::Num(value as f64)))
            .collect(),
    )
}

fn run_json(run: &BackendRun) -> Json {
    let mut members = vec![
        ("backend".to_string(), Json::Str(run.backend.clone())),
        ("ops".to_string(), Json::Num(run.ops as f64)),
        (
            "payload_bytes".to_string(),
            Json::Num(run.payload_bytes as f64),
        ),
        ("errors".to_string(), Json::Num(run.errors as f64)),
        ("sim_us".to_string(), Json::Num(run.sim_time.as_us_f64())),
        ("ops_per_sec".to_string(), Json::Num(run.ops_per_sec)),
        ("gbps".to_string(), Json::Num(run.gbps)),
        ("lat_p50_ns".to_string(), Json::Num(run.p50.as_ns_f64())),
        ("lat_p99_ns".to_string(), Json::Num(run.p99.as_ns_f64())),
        ("lat_mean_ns".to_string(), Json::Num(run.mean.as_ns_f64())),
        ("events".to_string(), Json::Num(run.events as f64)),
        ("wall_secs".to_string(), Json::Num(run.wall_secs)),
        (
            "wall_events_per_sec".to_string(),
            Json::Num(run.wall_events_per_sec),
        ),
    ];
    if let Some(total) = &run.pipeline_total {
        members.push(("pipeline_total".to_string(), stats_json(total)));
        members.push((
            "per_node".to_string(),
            Json::Arr(run.per_node.iter().map(stats_json).collect()),
        ));
    }
    Json::Obj(members)
}

/// Measures this machine's single-core event throughput: the legacy
/// boxed-closure engine draining a fixed pseudorandom 100k-event workload
/// (best of three). Reports store this next to their absolute events/sec
/// so [`check_baseline`] can compare runs from different machines by the
/// *ratio* to the host's own calibration instead of raw wall-clock rates.
pub fn calibrate() -> f64 {
    const N: u64 = 100_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let started = Instant::now();
        let mut engine: sonuma_sim::Engine<u64> = sonuma_sim::Engine::new();
        let mut acc = 0u64;
        let mut seed = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..N {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let salt = seed;
            engine.schedule_at(
                SimTime::from_ps(seed % 5_000_000_000),
                move |w: &mut u64, _| {
                    *w = w.wrapping_add(salt);
                },
            );
        }
        engine.run(&mut acc);
        assert_ne!(acc, 0);
        best = best.max(N as f64 / started.elapsed().as_secs_f64());
    }
    best
}

/// Builds the versioned report document from executed scenarios.
pub fn report(results: &[ScenarioResult]) -> Json {
    report_inner(results, None)
}

/// As [`report`], embedding a host calibration (see [`calibrate`]) so the
/// report can gate — and be gated — across machines.
pub fn report_calibrated(results: &[ScenarioResult], boxed_events_per_sec: f64) -> Json {
    report_inner(results, Some(boxed_events_per_sec))
}

fn report_inner(results: &[ScenarioResult], calibration: Option<f64>) -> Json {
    let mut members = vec![("schema".to_string(), Json::Str(REPORT_SCHEMA.into()))];
    if let Some(eps) = calibration {
        members.push((
            "calibration".to_string(),
            Json::Obj(vec![(
                "wall_boxed_events_per_sec".to_string(),
                Json::Num(eps),
            )]),
        ));
    }
    members.push((
        "scenarios".to_string(),
        Json::Arr(
            results
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("spec".into(), r.spec.to_json()),
                        (
                            "runs".into(),
                            Json::Arr(r.runs.iter().map(run_json).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(members)
}

/// Checks that a parsed document is a well-formed scenario report.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    match doc.str_of("schema") {
        Some(REPORT_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema {other:?}")),
        None => return Err("missing schema tag".to_string()),
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("missing scenarios array")?;
    if scenarios.is_empty() {
        return Err("empty scenarios array".to_string());
    }
    for (i, sc) in scenarios.iter().enumerate() {
        let spec = sc
            .get("spec")
            .ok_or(format!("scenario {i}: missing spec"))?;
        let name = spec
            .str_of("name")
            .ok_or(format!("scenario {i}: spec has no name"))?;
        spec.u64_of("nodes")
            .filter(|&n| n >= 2)
            .ok_or(format!("scenario {name}: bad nodes"))?;
        spec.u64_of("seed")
            .ok_or(format!("scenario {name}: no seed"))?;
        let runs = sc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or(format!("scenario {name}: missing runs"))?;
        if runs.is_empty() {
            return Err(format!("scenario {name}: no runs"));
        }
        for run in runs {
            let backend = run
                .str_of("backend")
                .ok_or(format!("scenario {name}: run without backend"))?;
            for key in [
                "ops",
                "payload_bytes",
                "errors",
                "sim_us",
                "ops_per_sec",
                "gbps",
                "lat_p50_ns",
                "lat_p99_ns",
                "events",
                "wall_secs",
                "wall_events_per_sec",
            ] {
                run.f64_of(key)
                    .ok_or(format!("scenario {name}/{backend}: missing {key}"))?;
            }
        }
    }
    Ok(())
}

/// Outcome of comparing a fresh report against a checked-in baseline.
#[derive(Debug, Default)]
pub struct BaselineCheck {
    /// `(scenario, backend)` pairs that regressed, with details.
    pub failures: Vec<String>,
    /// Informational lines (sim-metric drift, missing counterparts).
    pub notes: Vec<String>,
}

/// Pairs whose baseline executed fewer events than this are too short for
/// a meaningful wall-clock rate (sub-10 ms runs are scheduler noise); they
/// are excluded from per-pair gating but still count toward the aggregate.
pub const MIN_GATED_EVENTS: u64 = 100_000;

#[derive(Debug)]
struct RunRow {
    name: String,
    backend: String,
    eps: f64,
    sim_us: f64,
    events: f64,
    wall_secs: f64,
}

fn run_rows(doc: &Json) -> Vec<RunRow> {
    let mut out = Vec::new();
    if let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) {
        for sc in scenarios {
            let name = sc
                .get("spec")
                .and_then(|s| s.str_of("name"))
                .unwrap_or("?")
                .to_string();
            if let Some(runs) = sc.get("runs").and_then(Json::as_arr) {
                for run in runs {
                    out.push(RunRow {
                        name: name.clone(),
                        backend: run.str_of("backend").unwrap_or("?").to_string(),
                        eps: run.f64_of("wall_events_per_sec").unwrap_or(0.0),
                        sim_us: run.f64_of("sim_us").unwrap_or(0.0),
                        events: run.f64_of("events").unwrap_or(0.0),
                        wall_secs: run.f64_of("wall_secs").unwrap_or(0.0),
                    });
                }
            }
        }
    }
    out
}

/// The host calibration embedded in a report, if present and sane.
fn calibration_of(doc: &Json) -> Option<f64> {
    doc.get("calibration")
        .and_then(|c| c.f64_of("wall_boxed_events_per_sec"))
        .filter(|&x| x > 0.0)
}

/// Compares wall-clock events/sec of `current` against `baseline`.
///
/// When both reports embed a host calibration (see [`calibrate`]), rates
/// are compared *relative to each host's calibration*, so a baseline
/// recorded on one machine meaningfully gates a run on another; without
/// calibration the comparison falls back to absolute rates (noted).
///
/// Two gates, both with budget `max_regress` (e.g. `0.20`):
///
/// * per `(scenario, backend)` pair, for pairs whose baseline executed at
///   least [`MIN_GATED_EVENTS`] events;
/// * the aggregate `Σ events / Σ wall_secs` across every matched pair,
///   which is the overall typed-engine throughput the tentpole protects.
///
/// Simulated-metric drift and current runs with no baseline counterpart
/// (i.e. not gated at all) are reported as notes, not failures — both
/// mean the baseline wants regenerating.
pub fn check_baseline(current: &Json, baseline: &Json, max_regress: f64) -> BaselineCheck {
    let mut check = BaselineCheck::default();
    let cur = run_rows(current);
    let base_rows = run_rows(baseline);
    // Normalization divisors: each host's own calibration, or 1.0 for the
    // absolute fallback when either side lacks one.
    let (cur_calib, base_calib) = match (calibration_of(current), calibration_of(baseline)) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            check.notes.push(
                "no calibration on one or both reports; comparing absolute \
                 events/sec (hardware differences count as regressions)"
                    .to_string(),
            );
            (1.0, 1.0)
        }
    };
    let (mut base_events, mut base_wall) = (0.0f64, 0.0f64);
    let (mut cur_events, mut cur_wall) = (0.0f64, 0.0f64);
    for base in &base_rows {
        let Some(row) = cur
            .iter()
            .find(|r| r.name == base.name && r.backend == base.backend)
        else {
            check.failures.push(format!(
                "{}/{}: present in baseline, missing in run",
                base.name, base.backend
            ));
            continue;
        };
        base_events += base.events;
        base_wall += base.wall_secs;
        cur_events += row.events;
        cur_wall += row.wall_secs;
        let base_rel = base.eps / base_calib;
        let cur_rel = row.eps / cur_calib;
        let floor = base_rel * (1.0 - max_regress);
        if base.events < MIN_GATED_EVENTS as f64 {
            check.notes.push(format!(
                "{}/{}: only {:.0} events in baseline, below the {} gating \
                 floor; counted in the aggregate only",
                base.name, base.backend, base.events, MIN_GATED_EVENTS
            ));
        } else if cur_rel < floor {
            check.failures.push(format!(
                "{}/{}: {:.3} x-calibration events/sec < {:.3} \
                 (baseline {:.3}, max regression {:.0}%)",
                base.name,
                base.backend,
                cur_rel,
                floor,
                base_rel,
                max_regress * 100.0
            ));
        }
        if (row.sim_us - base.sim_us).abs() > base.sim_us * 1e-9 {
            check.notes.push(format!(
                "{}/{}: simulated time drifted ({:.3} us -> {:.3} us); \
                 regenerate bench/baseline.json if intended",
                base.name, base.backend, base.sim_us, row.sim_us
            ));
        }
    }
    // Runs with no baseline counterpart are not gated — surface that.
    for row in &cur {
        if !base_rows
            .iter()
            .any(|b| b.name == row.name && b.backend == row.backend)
        {
            check.notes.push(format!(
                "{}/{}: not in baseline, events/sec not gated; regenerate \
                 bench/baseline.json to cover it",
                row.name, row.backend
            ));
        }
    }
    if base_wall > 0.0 && cur_wall > 0.0 {
        let base_agg = base_events / base_wall / base_calib;
        let cur_agg = cur_events / cur_wall / cur_calib;
        let floor = base_agg * (1.0 - max_regress);
        if cur_agg < floor {
            check.failures.push(format!(
                "aggregate: {cur_agg:.3} x-calibration events/sec < {floor:.3} \
                 (baseline {base_agg:.3}, max regression {:.0}%)",
                max_regress * 100.0
            ));
        }
    }
    check
}

// ---------------------------------------------------------------------
// Canned specs.
// ---------------------------------------------------------------------

/// The three small specs the CI `bench-smoke` lane runs.
pub fn smoke_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "smoke-uniform-8".into(),
            nodes: 8,
            backend: BackendSel::All,
            workload: WorkloadKind::UniformRead,
            op_bytes: 256,
            ops_per_node: 1500,
            window: 12,
            seed: 7,
            ..ScenarioSpec::default()
        },
        ScenarioSpec {
            name: "smoke-torus-16".into(),
            nodes: 16,
            topology: TopologySpec::Torus2d(4, 4),
            backend: BackendSel::One(BackendKind::Sonuma),
            workload: WorkloadKind::NeighborRead,
            op_bytes: 1024,
            ops_per_node: 400,
            window: 8,
            seed: 11,
            ..ScenarioSpec::default()
        },
        ScenarioSpec {
            name: "smoke-mixed-4".into(),
            nodes: 4,
            backend: BackendSel::All,
            workload: WorkloadKind::Mixed,
            read_fraction: 0.75,
            op_bytes: 128,
            ops_per_node: 2000,
            window: 16,
            seed: 13,
            ..ScenarioSpec::default()
        },
    ]
}

/// The rack-scale scenario: 512 soNUMA nodes streaming neighbor reads —
/// the scale the paper's §6 fabric discussion targets.
pub fn rack512_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack512-neighbor".into(),
        nodes: 512,
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::NeighborRead,
        op_bytes: 512,
        ops_per_node: 8,
        window: 4,
        segment_bytes: 1 << 18,
        seed: 99,
        ..ScenarioSpec::default()
    }
}

/// Every canned spec, addressable by name from the CLI.
pub fn canned_specs() -> Vec<ScenarioSpec> {
    let mut specs = smoke_specs();
    specs.push(rack512_spec());
    specs
}
