//! Config-driven scenario harness: declarative cluster/workload specs,
//! executed over every [`RemoteBackend`], reported as versioned
//! machine-readable `BENCH.json`.
//!
//! A [`ScenarioSpec`] names everything an experiment needs — node count,
//! fabric topology, platform, backend set, workload mix, operation size,
//! per-node operation count, issue window, and the RNG seed — in a flat
//! TOML file (`key = value` lines only; see [`ScenarioSpec::to_toml`]).
//! The `sonuma-bench scenario` binary sweeps specs, drives each across the
//! requested backends through the transport-agnostic `RemoteBackend`
//! contract, and emits one report containing simulated throughput,
//! p50/p99 latency, per-node RMC pipeline counters (soNUMA runs), and the
//! host-side events/sec that the `bench-smoke` CI lane gates on.
//!
//! Everything except the `wall_*` fields is a pure function of the spec:
//! two runs of the same spec + seed render byte-identical JSON once those
//! fields are stripped, which the determinism test under `tests/` asserts.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Instant;

use sonuma_baselines::{RdmaBackend, TcpBackend};
use sonuma_core::{
    MachineConfig, NodeId, PipelineStats, RemoteBackend, RemoteRequest, SchedPolicy, SloClass,
    SonumaBackend, TenantId,
};
use sonuma_fabric::{FabricConfig, FaultPlan, LinkFault, LinkStats, NodeFault, Topology};
use sonuma_sim::stats::LatencyHistogram;
use sonuma_sim::{DetRng, SimTime};

use crate::json::Json;
use crate::trafficgen::{jain_index, ArrivalGen, ArrivalKind, ZipfSampler};

/// Version tag of the report format (bump on breaking schema changes).
/// v2 added the `per_tenant` and `fabric` run sections (multi-tenant
/// open-loop scenarios) and the `offered_ops`/`lat_p999_ns` run fields.
/// v3 added `wall_packets_per_sec` (fabric packets over host wall time —
/// the batching-invariant throughput the bench-smoke lane gates alongside
/// events/sec) and redefined `events` as *logical* events: line
/// injections folded into one burst event still count individually, so
/// the metric is comparable across `rgp_burst_lines` settings.
/// v4 added the `threads` spec field (`[execution]` section) and the
/// per-run `sharding` section (thread/shard counts, conservative epochs,
/// per-shard event counts and wall rates). Everything outside `wall_*`
/// fields and the `sharding` section is independent of the thread count —
/// the parallel-equivalence CI gate diffs two reports with those
/// stripped (see [`equivalence_diff`]).
/// v5 added the `qp_entries` spec field (`[execution]` section, WQ/CQ
/// ring depth) and grew the `sharding` section with the distance-aware
/// engine's metadata: `cut_links`, `lookahead_min_ns`/`lookahead_max_ns`
/// (the per-shard-pair matrix bounds), `pair_bound_violations` (always 0
/// when the conservative bound holds), `resident_bytes` (the modeled
/// machine's resident-heap estimate), and the optional `compare_serial`
/// object written by `--compare-threads` (serial wall time, wall ratio,
/// serial epoch count).
/// v6 added the `[faults]` spec section ([`FaultSpec`]) and the per-run
/// `faults` section ([`FaultOutcome`]): injected link/node fault counts,
/// fabric drop/corrupt/reroute counters, source-side recovery counters
/// (timeouts, retransmits, aborts), goodput under failure, and the
/// 1 µs-binned recovery time back to ≥ 90 % of the pre-fault completion
/// rate. Latency histograms now record only successful completions
/// (identical on fault-free runs, which complete everything with Ok).
/// v7 added the `[trace]` spec section ([`TraceSpec`]) and the per-run
/// `trace` section: flight-recorder sample counts, ring drop tallies,
/// and the recorder's wall-clock overhead versus the untraced timing
/// repetitions. With tracing off the section is absent and every other
/// byte matches a v6 report body.
/// v8 added the `speculate_epochs` spec field (`[execution]` section,
/// speculative run-ahead depth `K`), the per-run `wall_construct_secs`
/// field (world-construction wall time, reported separately from drive
/// time so the parallel-construction win is gated on its own), and the
/// `sharding.speculation` object (`committed`/`rolled_back` clock-bet
/// counts and `rollback_ratio`). Speculation counters depend on host
/// scheduling, so they live in the equivalence-stripped `sharding`
/// section; everything outside it is byte-identical between `K = 0` and
/// any `K > 0`.
/// v9 added the `[kv]` spec section ([`KvSpec`]) and the per-run `kv`
/// section: the rack-scale KV-cache service scenario. The section
/// carries directory-plane counts (keys, GET/PUT tallies, lines moved,
/// verification failures — always 0), per-value-size-class GET/PUT
/// p50/p99 rows, and per-SLO-class rows (gold/silver/bronze GET tails
/// plus achieved-vs-offered throughput). Specs without a `[kv]` section
/// — or with `keys = 0` — render byte-identically to a v8 report body.
pub const REPORT_SCHEMA: &str = "sonuma-bench.scenario/v9";

/// A transport a scenario runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The full soNUMA machine (`SonumaBackend`).
    Sonuma,
    /// The calibrated ConnectX-3-class RDMA model.
    Rdma,
    /// The calibrated Calxeda TCP/IP model.
    Tcp,
}

impl BackendKind {
    fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sonuma => "sonuma",
            BackendKind::Rdma => "rdma",
            BackendKind::Tcp => "tcp",
        }
    }
}

/// Which backends a spec requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSel {
    /// One specific transport.
    One(BackendKind),
    /// soNUMA, RDMA and TCP (the Table 2 trio).
    All,
}

impl BackendSel {
    /// The concrete backend list, in fixed report order.
    pub fn kinds(self) -> Vec<BackendKind> {
        match self {
            BackendSel::One(k) => vec![k],
            BackendSel::All => vec![BackendKind::Sonuma, BackendKind::Rdma, BackendKind::Tcp],
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            BackendSel::All => "all",
            BackendSel::One(k) => k.as_str(),
        }
    }
}

/// Fabric arrangement for soNUMA runs (the modeled baselines have no
/// topology; they ignore this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Full crossbar, flat inter-node latency (Table 1).
    Crossbar,
    /// 2D torus, `w × h` nodes.
    Torus2d(usize, usize),
    /// 3D torus, `x × y × z` nodes.
    Torus3d(usize, usize, usize),
}

impl TopologySpec {
    fn to_config(self, nodes: usize) -> FabricConfig {
        match self {
            TopologySpec::Crossbar => FabricConfig::paper_crossbar(nodes),
            TopologySpec::Torus2d(w, h) => FabricConfig::torus2d(w, h),
            TopologySpec::Torus3d(x, y, z) => FabricConfig::torus3d(x, y, z),
        }
    }

    fn render(self) -> String {
        match self {
            TopologySpec::Crossbar => "crossbar".to_string(),
            TopologySpec::Torus2d(w, h) => format!("torus2d:{w}x{h}"),
            TopologySpec::Torus3d(x, y, z) => format!("torus3d:{x}x{y}x{z}"),
        }
    }
}

/// Timing platform for soNUMA runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformSpec {
    /// The paper's simulated-hardware platform (Table 1).
    Hardware,
    /// The Xen-based development platform (§7.1).
    Dev,
}

/// Request stream shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Every node reads random offsets on uniformly random peers.
    UniformRead,
    /// Every node streams sequential reads from its ring successor.
    NeighborRead,
    /// Uniform destinations; each operation is a read with probability
    /// `read_fraction`, otherwise a write.
    Mixed,
}

impl WorkloadKind {
    fn as_str(self) -> &'static str {
        match self {
            WorkloadKind::UniformRead => "uniform-read",
            WorkloadKind::NeighborRead => "neighbor-read",
            WorkloadKind::Mixed => "mixed",
        }
    }
}

/// How tenant scheduling weights are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightMode {
    /// Every tenant gets weight 1.
    Uniform,
    /// Weight follows the SLO class: gold 8, silver 4, bronze 1.
    Tiered,
}

impl WeightMode {
    fn as_str(self) -> &'static str {
        match self {
            WeightMode::Uniform => "uniform",
            WeightMode::Tiered => "tiered",
        }
    }

    fn parse(s: &str) -> Result<WeightMode, String> {
        match s {
            "uniform" => Ok(WeightMode::Uniform),
            "tiered" => Ok(WeightMode::Tiered),
            other => Err(format!("unknown weights {other:?} (uniform|tiered)")),
        }
    }
}

/// The `[tenants]` section: how many tenants share the cluster and how
/// the RGP arbitrates between their queue pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenancySpec {
    /// Total tenants across the cluster; tenant `t` is homed on node
    /// `t % nodes` (channel `t / nodes`) and gets its own queue pair
    /// there. SLO classes are assigned in contiguous thirds by id
    /// (gold, then silver, then bronze).
    pub tenants: usize,
    /// The RGP's QoS policy.
    pub scheduler: SchedPolicy,
    /// Weight assignment.
    pub weights: WeightMode,
}

/// The `[traffic]` section: the open-loop arrival process every tenant
/// drives (replaces the closed-loop `ops_per_node`/`window` stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Arrival-process shape.
    pub arrival: ArrivalKind,
    /// Offered load per tenant, operations per simulated second.
    pub rate_per_tenant: f64,
    /// Arrival horizon in simulated microseconds (completions drain
    /// after it).
    pub duration_us: f64,
    /// Zipf skew over remote addresses (0 = uniform).
    pub zipf_addr: f64,
    /// Zipf skew over destination nodes (0 = uniform; >0 concentrates
    /// load on low-numbered nodes — incast).
    pub zipf_dst: f64,
    /// Arrivals per burst (bursty process only).
    pub burst: u32,
}

/// The `[faults]` section: a count-based description of what goes wrong
/// in a run. The concrete links and nodes are sampled from a dedicated
/// [`DetRng`] stream seeded by `seed` alone, so the same section produces
/// the same [`FaultPlan`] under any workload seed, thread count, or shard
/// partition — the plan is a pure function of `(spec, topology)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault stream (link/node sampling and every per-packet
    /// drop/corrupt draw). Independent of the workload seed.
    pub seed: u64,
    /// Directed links degraded for the whole run.
    pub degraded_links: usize,
    /// Per-packet drop probability on each degraded link.
    pub drop_prob: f64,
    /// Per-packet corruption probability on each degraded link.
    pub corrupt_prob: f64,
    /// Serialization multiplier on degraded links (`>= 1`).
    pub derate: f64,
    /// Flow-control credits lost per lane on degraded links.
    pub credit_loss: usize,
    /// Directed links killed outright at `kill_at_us`.
    pub killed_links: usize,
    /// Simulated microsecond the killed links die.
    pub kill_at_us: f64,
    /// Simulated microsecond the killed links come back (0 = never).
    pub revive_at_us: f64,
    /// Nodes that crash at `crash_at_us`, losing all RMC state.
    pub crashed_nodes: usize,
    /// Simulated microsecond the crashing nodes go down.
    pub crash_at_us: f64,
    /// Simulated microsecond the crashed nodes restart (cold caches).
    pub restart_at_us: f64,
    /// Base retransmission deadline in microseconds (doubles per retry).
    pub timeout_us: f64,
    /// Retransmission attempts before an operation aborts.
    pub max_retries: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            degraded_links: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            derate: 1.0,
            credit_loss: 0,
            killed_links: 0,
            kill_at_us: 20.0,
            revive_at_us: 0.0,
            crashed_nodes: 0,
            crash_at_us: 30.0,
            restart_at_us: 50.0,
            timeout_us: 10.0,
            max_retries: 3,
        }
    }
}

fn us_to_sim(us: f64) -> SimTime {
    SimTime::from_ps((us * 1e6) as u64)
}

impl FaultSpec {
    /// Whether the section injects nothing (a zero-count `[faults]` table
    /// must behave byte-identically to no section at all).
    pub fn is_empty(&self) -> bool {
        self.degraded_links == 0 && self.killed_links == 0 && self.crashed_nodes == 0
    }

    /// The simulated microsecond the first scheduled fault fires, `None`
    /// for degradation-only plans (which have no onset — the whole run is
    /// degraded).
    pub fn onset_us(&self) -> Option<f64> {
        let mut onset: Option<f64> = None;
        if self.killed_links > 0 {
            onset = Some(self.kill_at_us);
        }
        if self.crashed_nodes > 0 {
            onset = Some(onset.map_or(self.crash_at_us, |o| o.min(self.crash_at_us)));
        }
        onset
    }

    /// Samples the concrete [`FaultPlan`] for `topology`: distinct killed
    /// links first, then distinct degraded links disjoint from them, then
    /// distinct crashing nodes — all from one seeded stream. Counts are
    /// clamped to what the topology has. Returns `None` when the section
    /// is empty, preserving the fault-free fast path.
    pub fn instantiate(&self, topology: &Topology) -> Option<FaultPlan> {
        if self.is_empty() {
            return None;
        }
        let nodes = topology.nodes();
        let mut directed: Vec<(NodeId, NodeId)> = Vec::new();
        for n in 0..nodes {
            let src = NodeId(n as u16);
            for dst in topology.neighbors(src) {
                directed.push((src, dst));
            }
        }
        let mut rng = DetRng::seed(self.seed);
        let mut taken = vec![false; directed.len()];
        let draw_links = |rng: &mut DetRng, taken: &mut Vec<bool>, count: usize| {
            let free = taken.iter().filter(|&&t| !t).count();
            let mut picked = Vec::new();
            for _ in 0..count.min(free) {
                loop {
                    let i = rng.below(directed.len() as u64) as usize;
                    if !taken[i] {
                        taken[i] = true;
                        picked.push(directed[i]);
                        break;
                    }
                }
            }
            picked
        };
        let mut plan = FaultPlan::new(self.seed);
        plan.timeout = us_to_sim(self.timeout_us);
        plan.max_retries = self.max_retries;
        for (src, dst) in draw_links(&mut rng, &mut taken, self.killed_links) {
            let mut f = LinkFault::on(src, dst);
            f.kill_at = Some(us_to_sim(self.kill_at_us));
            f.revive_at = (self.revive_at_us > 0.0).then(|| us_to_sim(self.revive_at_us));
            plan.links.push(f);
        }
        for (src, dst) in draw_links(&mut rng, &mut taken, self.degraded_links) {
            let mut f = LinkFault::on(src, dst);
            f.drop_prob = self.drop_prob;
            f.corrupt_prob = self.corrupt_prob;
            f.derate = self.derate;
            f.credit_loss = self.credit_loss;
            plan.links.push(f);
        }
        let mut crashed = vec![false; nodes];
        for _ in 0..self.crashed_nodes.min(nodes) {
            loop {
                let n = rng.below(nodes as u64) as usize;
                if !crashed[n] {
                    crashed[n] = true;
                    plan.nodes.push(NodeFault {
                        node: NodeId(n as u16),
                        crash_at: us_to_sim(self.crash_at_us),
                        restart_at: us_to_sim(self.restart_at_us),
                    });
                    break;
                }
            }
        }
        Some(plan)
    }
}

/// The `[trace]` section: flight-recorder sampling for soNUMA runs. A
/// `None` spec — or a section with `interval_us = 0` — arms nothing and
/// runs the exact untraced code paths, so every baseline report stays
/// byte-identical. With tracing on, the recorder samples link counters in
/// the commit merge, node counters at quantum boundaries, and tenant
/// completions in the open-loop driver, all keyed by simulated time — the
/// emitted trace is byte-identical across `--threads`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Sampling cadence in simulated microseconds (0 disables tracing).
    pub interval_us: f64,
    /// Link-sample ring capacity.
    pub link_capacity: usize,
    /// Node-sample ring capacity.
    pub node_capacity: usize,
    /// Fault-event ring capacity.
    pub event_capacity: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        let defaults = sonuma_trace::TraceConfig::every(SimTime::from_us(5));
        TraceSpec {
            interval_us: 5.0,
            link_capacity: defaults.link_capacity,
            node_capacity: defaults.node_capacity,
            event_capacity: defaults.event_capacity,
        }
    }
}

impl TraceSpec {
    /// Whether the section arms nothing (an `interval_us = 0` `[trace]`
    /// table must behave byte-identically to no section at all).
    pub fn is_empty(&self) -> bool {
        self.interval_us == 0.0
    }

    /// The recorder configuration this section describes.
    pub fn config(&self) -> sonuma_trace::TraceConfig {
        sonuma_trace::TraceConfig {
            interval: us_to_sim(self.interval_us),
            link_capacity: self.link_capacity,
            node_capacity: self.node_capacity,
            event_capacity: self.event_capacity,
        }
    }
}

/// The `[kv]` section: the rack-scale KV-cache service workload (§2.1,
/// §8). Keys map to `(node, offset, len)` through the deterministic
/// directory plane ([`sonuma_apps::kvdir`]); GETs are one multi-line
/// one-sided read each, PUTs push the full value over the write (fill)
/// path, so the per-size-class GET/PUT tails expose the
/// one-sided-vs-messaging crossover. Requires `[tenants]` + `[traffic]`
/// — arrivals come from the same open-loop generator as every tenant
/// scenario. A `None` spec — or a section with `keys = 0` — runs the
/// exact non-KV code paths and renders no section at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvSpec {
    /// Keys in the directory (0 disables the section).
    pub keys: u64,
    /// Smallest value-size class in bytes (power of two, >= 64).
    pub value_min: u64,
    /// Largest value-size class in bytes (power of two, <= 64 MB);
    /// classes double from `value_min` to `value_max`.
    pub value_max: u64,
    /// Zipf skew over key popularity (0 = uniform).
    pub zipf_key: f64,
    /// Probability an operation is a GET (the rest are PUT refills).
    pub get_fraction: f64,
    /// Probability a GET re-reads the tenant's previous key (hot-key
    /// repeat-read locality) instead of sampling a fresh one.
    pub repeat_prob: f64,
    /// Seed of the per-tenant key/op decision streams, independent of
    /// the workload seed.
    pub seed: u64,
}

impl Default for KvSpec {
    fn default() -> Self {
        KvSpec {
            keys: 0,
            value_min: 4096,
            value_max: 32768,
            zipf_key: 0.99,
            get_fraction: 0.95,
            repeat_prob: 0.0,
            seed: 7,
        }
    }
}

impl KvSpec {
    /// Whether the section drives nothing (a `keys = 0` `[kv]` table
    /// must behave byte-identically to no section at all).
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Builds the directory plane this section describes over `nodes`
    /// nodes with `segment_bytes` context segments.
    pub fn directory(
        &self,
        nodes: usize,
        segment_bytes: u64,
    ) -> Result<sonuma_apps::KvDirectory, String> {
        sonuma_apps::KvDirectory::build(
            self.keys,
            nodes,
            segment_bytes,
            self.value_min,
            self.value_max,
        )
    }
}

/// The SLO class of tenant `id` out of `total`: contiguous thirds.
pub fn tenant_class(id: usize, total: usize) -> SloClass {
    match id * 3 / total.max(1) {
        0 => SloClass::Gold,
        1 => SloClass::Silver,
        _ => SloClass::Bronze,
    }
}

fn class_weight(mode: WeightMode, class: SloClass) -> u32 {
    match mode {
        WeightMode::Uniform => 1,
        WeightMode::Tiered => match class {
            SloClass::Gold => 8,
            SloClass::Silver => 4,
            SloClass::Bronze => 1,
        },
    }
}

/// A declarative scenario: everything one benchmark run needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report key; also the baseline-matching key).
    pub name: String,
    /// Cluster size.
    pub nodes: usize,
    /// Fabric arrangement (soNUMA runs).
    pub topology: TopologySpec,
    /// Timing platform (soNUMA runs).
    pub platform: PlatformSpec,
    /// Transports to execute.
    pub backend: BackendSel,
    /// Request stream shape.
    pub workload: WorkloadKind,
    /// Probability an operation is a read (`mixed` workload only).
    pub read_fraction: f64,
    /// Payload bytes per operation (cache-line multiple).
    pub op_bytes: u64,
    /// Operations each node issues.
    pub ops_per_node: u64,
    /// Maximum operations a node keeps in flight.
    pub window: usize,
    /// Per-node globally readable segment size.
    pub segment_bytes: u64,
    /// Seed for every stochastic workload decision.
    pub seed: u64,
    /// Host threads the soNUMA backend shards its cluster across
    /// (`[execution]` section / `--threads`). Purely a wall-clock knob:
    /// every simulated metric is identical for every value.
    pub threads: usize,
    /// WQ/CQ ring entries per queue pair (`[execution]` section). Part of
    /// the simulated machine: a ring shorter than the in-flight window
    /// changes WqFull backpressure, so rack-scale specs that shrink it
    /// must keep `qp_entries > window`. At 4096 nodes the default
    /// 64-entry rings cost two guest-heap pages per node; 16-entry rings
    /// fit WQ and CQ in one.
    pub qp_entries: u16,
    /// Speculative epoch run-ahead depth `K` (`[execution]` section /
    /// `--speculate`). Like `threads`, purely a wall-clock knob: the
    /// engine validates every clock bet at the epoch barrier and rolls
    /// back refuted ones, so every simulated metric is identical for
    /// every value (only the `sharding.speculation` counters differ).
    pub speculate_epochs: usize,
    /// Multi-tenant QP virtualization (`[tenants]` section). Present iff
    /// `traffic` is present; together they switch the run from the
    /// closed-loop stream to the open-loop tenant generator.
    pub tenancy: Option<TenancySpec>,
    /// Open-loop arrival processes (`[traffic]` section).
    pub traffic: Option<TrafficSpec>,
    /// Seeded fault injection (`[faults]` section). `None` — or a section
    /// whose counts are all zero — runs the exact fault-free code paths.
    pub faults: Option<FaultSpec>,
    /// Flight-recorder sampling (`[trace]` section). `None` — or a section
    /// with a zero interval — runs the exact untraced code paths.
    pub trace: Option<TraceSpec>,
    /// KV-cache service workload (`[kv]` section). `None` — or a section
    /// with `keys = 0` — runs the exact non-KV code paths. Requires
    /// `[tenants]` and `[traffic]`.
    pub kv: Option<KvSpec>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: String::new(),
            nodes: 0,
            topology: TopologySpec::Crossbar,
            platform: PlatformSpec::Hardware,
            backend: BackendSel::All,
            workload: WorkloadKind::UniformRead,
            read_fraction: 0.5,
            op_bytes: 64,
            ops_per_node: 128,
            window: 16,
            segment_bytes: 1 << 20,
            seed: 42,
            threads: 1,
            qp_entries: 64,
            speculate_epochs: 0,
            tenancy: None,
            traffic: None,
            faults: None,
            trace: None,
            kv: None,
        }
    }
}

impl Default for TenancySpec {
    fn default() -> Self {
        TenancySpec {
            tenants: 0,
            scheduler: SchedPolicy::Wdrr,
            weights: WeightMode::Uniform,
        }
    }
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            arrival: ArrivalKind::Poisson,
            rate_per_tenant: 100_000.0,
            duration_us: 100.0,
            zipf_addr: 0.0,
            zipf_dst: 0.0,
            burst: 8,
        }
    }
}

/// Why a spec failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The text is not valid flat TOML (`line`, `message`).
    Parse(usize, String),
    /// The values are syntactically fine but semantically invalid.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl ScenarioSpec {
    /// Checks every cross-field constraint.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |msg: String| Err(SpecError::Invalid(msg));
        if self.name.is_empty() {
            return err("name must be nonempty".into());
        }
        if self.nodes < 2 {
            return err(format!(
                "nodes = {} (remote ops need at least 2)",
                self.nodes
            ));
        }
        if self.nodes > u16::MAX as usize {
            return err(format!("nodes = {} exceeds the NodeId space", self.nodes));
        }
        match self.topology {
            TopologySpec::Crossbar => {}
            TopologySpec::Torus2d(w, h) => {
                if w * h != self.nodes || w < 2 || h < 2 {
                    return err(format!(
                        "torus2d:{w}x{h} does not arrange {} nodes",
                        self.nodes
                    ));
                }
            }
            TopologySpec::Torus3d(x, y, z) => {
                if x * y * z != self.nodes || x < 2 || y < 2 || z < 2 {
                    return err(format!(
                        "torus3d:{x}x{y}x{z} does not arrange {} nodes",
                        self.nodes
                    ));
                }
            }
        }
        if self.op_bytes == 0 || !self.op_bytes.is_multiple_of(64) || self.op_bytes > 8192 {
            return err(format!(
                "op_bytes = {} (must be a cache-line multiple in 64..=8192)",
                self.op_bytes
            ));
        }
        if self.ops_per_node == 0 {
            return err("ops_per_node must be positive".into());
        }
        if self.window == 0 || self.window > 64 {
            return err(format!("window = {} (must be 1..=64)", self.window));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return err(format!(
                "read_fraction = {} out of [0, 1]",
                self.read_fraction
            ));
        }
        if self.segment_bytes < self.op_bytes * 2 || self.segment_bytes > (1 << 30) {
            return err(format!(
                "segment_bytes = {} (need 2*op_bytes..=1 GiB)",
                self.segment_bytes
            ));
        }
        if self.threads == 0 || self.threads > 64 {
            return err(format!("threads = {} (must be 1..=64)", self.threads));
        }
        if self.qp_entries < 4 || self.qp_entries > 4096 {
            return err(format!(
                "qp_entries = {} (must be 4..=4096)",
                self.qp_entries
            ));
        }
        if (self.qp_entries as usize) <= self.window {
            return err(format!(
                "qp_entries = {} must exceed window = {} (a full ring would deadlock the closed loop)",
                self.qp_entries, self.window
            ));
        }
        if self.speculate_epochs > 8 {
            return err(format!(
                "speculate_epochs = {} (must be 0..=8)",
                self.speculate_epochs
            ));
        }
        match (&self.tenancy, &self.traffic) {
            (None, None) => {}
            (Some(_), None) => {
                return err("[tenants] requires a [traffic] section".into());
            }
            (None, Some(_)) => {
                return err("[traffic] requires a [tenants] section".into());
            }
            (Some(tn), Some(tr)) => {
                if tn.tenants < self.nodes {
                    return err(format!(
                        "tenants = {} (need at least one per node, {} nodes)",
                        tn.tenants, self.nodes
                    ));
                }
                if tn.tenants > 1 << 20 {
                    return err(format!("tenants = {} (max 2^20)", tn.tenants));
                }
                if !(tr.rate_per_tenant > 0.0 && tr.rate_per_tenant <= 1e9) {
                    return err(format!(
                        "rate_per_tenant = {} (need (0, 1e9] ops/s)",
                        tr.rate_per_tenant
                    ));
                }
                if !(tr.duration_us > 0.0 && tr.duration_us <= 1e6) {
                    return err(format!("duration_us = {} (need (0, 1e6])", tr.duration_us));
                }
                for (key, theta) in [("zipf_addr", tr.zipf_addr), ("zipf_dst", tr.zipf_dst)] {
                    if !(0.0..=4.0).contains(&theta) {
                        return err(format!("{key} = {theta} out of [0, 4]"));
                    }
                }
                if tr.burst == 0 || tr.burst > 1024 {
                    return err(format!("burst = {} (need 1..=1024)", tr.burst));
                }
            }
        }
        if let Some(f) = &self.faults {
            for (key, p) in [("drop_prob", f.drop_prob), ("corrupt_prob", f.corrupt_prob)] {
                if !(0.0..=1.0).contains(&p) {
                    return err(format!("{key} = {p} out of [0, 1]"));
                }
            }
            if !(1.0..=64.0).contains(&f.derate) {
                return err(format!("derate = {} (need [1, 64])", f.derate));
            }
            if f.credit_loss > 64 {
                return err(format!("credit_loss = {} (max 64)", f.credit_loss));
            }
            if !(f.timeout_us > 0.0 && f.timeout_us <= 1e6) {
                return err(format!("timeout_us = {} (need (0, 1e6])", f.timeout_us));
            }
            if f.max_retries > 64 {
                return err(format!("max_retries = {} (max 64)", f.max_retries));
            }
            if f.killed_links > 0 {
                if !(f.kill_at_us > 0.0 && f.kill_at_us <= 1e6) {
                    return err(format!("kill_at_us = {} (need (0, 1e6])", f.kill_at_us));
                }
                if f.revive_at_us != 0.0 && f.revive_at_us <= f.kill_at_us {
                    return err(format!(
                        "revive_at_us = {} must exceed kill_at_us = {} (or be 0 for never)",
                        f.revive_at_us, f.kill_at_us
                    ));
                }
            }
            if f.crashed_nodes > 0 {
                if f.crashed_nodes >= self.nodes {
                    return err(format!(
                        "crashed_nodes = {} (must leave survivors among {} nodes)",
                        f.crashed_nodes, self.nodes
                    ));
                }
                if !(f.crash_at_us > 0.0 && f.crash_at_us <= 1e6) {
                    return err(format!("crash_at_us = {} (need (0, 1e6])", f.crash_at_us));
                }
                if f.restart_at_us <= f.crash_at_us {
                    return err(format!(
                        "restart_at_us = {} must exceed crash_at_us = {}",
                        f.restart_at_us, f.crash_at_us
                    ));
                }
            }
        }
        if let Some(t) = &self.trace {
            if !(0.0..=1e6).contains(&t.interval_us) {
                return err(format!(
                    "trace interval_us = {} (need [0, 1e6])",
                    t.interval_us
                ));
            }
            if !t.is_empty() {
                for (key, cap) in [
                    ("link_capacity", t.link_capacity),
                    ("node_capacity", t.node_capacity),
                    ("event_capacity", t.event_capacity),
                ] {
                    if cap == 0 || cap > 1 << 24 {
                        return err(format!("trace {key} = {cap} (need [1, 2^24])"));
                    }
                }
            }
        }
        if let Some(kv) = self.kv.as_ref().filter(|kv| !kv.is_empty()) {
            if self.tenancy.is_none() || self.traffic.is_none() {
                return err(
                    "[kv] needs [tenants] and [traffic] (the KV service is open-loop driven)"
                        .into(),
                );
            }
            if kv.keys > 1 << 20 {
                return err(format!("kv keys = {} (max 2^20)", kv.keys));
            }
            if !kv.value_min.is_power_of_two() || kv.value_min < 64 {
                return err(format!(
                    "kv value_min = {} (need a power of two >= 64)",
                    kv.value_min
                ));
            }
            if !kv.value_max.is_power_of_two()
                || kv.value_max < kv.value_min
                || kv.value_max > 1 << 26
            {
                return err(format!(
                    "kv value_max = {} (need a power of two in [value_min, 64 MB])",
                    kv.value_max
                ));
            }
            if !(0.0..=4.0).contains(&kv.zipf_key) {
                return err(format!("kv zipf_key = {} out of [0, 4]", kv.zipf_key));
            }
            if !(kv.get_fraction > 0.0 && kv.get_fraction <= 1.0) {
                return err(format!(
                    "kv get_fraction = {} (need (0, 1])",
                    kv.get_fraction
                ));
            }
            if !(0.0..1.0).contains(&kv.repeat_prob) {
                return err(format!("kv repeat_prob = {} (need [0, 1))", kv.repeat_prob));
            }
            // Building the directory proves every key fits its home
            // node's segment; a validated spec can never fail placement
            // at drive time.
            if let Err(e) = kv.directory(self.nodes, self.segment_bytes) {
                return err(e);
            }
        }
        Ok(())
    }

    /// Renders the spec as flat TOML, the format [`ScenarioSpec::from_toml`]
    /// reads back (round-trip stable).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("# sonuma-bench scenario spec\n");
        out.push_str(&format!("name = \"{}\"\n", self.name));
        out.push_str(&format!("nodes = {}\n", self.nodes));
        out.push_str(&format!("topology = \"{}\"\n", self.topology.render()));
        out.push_str(&format!(
            "platform = \"{}\"\n",
            match self.platform {
                PlatformSpec::Hardware => "hardware",
                PlatformSpec::Dev => "dev",
            }
        ));
        out.push_str(&format!("backend = \"{}\"\n", self.backend.as_str()));
        out.push_str(&format!("workload = \"{}\"\n", self.workload.as_str()));
        out.push_str(&format!("read_fraction = {}\n", self.read_fraction));
        out.push_str(&format!("op_bytes = {}\n", self.op_bytes));
        out.push_str(&format!("ops_per_node = {}\n", self.ops_per_node));
        out.push_str(&format!("window = {}\n", self.window));
        out.push_str(&format!("segment_bytes = {}\n", self.segment_bytes));
        out.push_str(&format!("seed = {}\n", self.seed));
        if self.threads != 1 || self.qp_entries != 64 || self.speculate_epochs != 0 {
            out.push_str("\n[execution]\n");
            if self.threads != 1 {
                out.push_str(&format!("threads = {}\n", self.threads));
            }
            if self.qp_entries != 64 {
                out.push_str(&format!("qp_entries = {}\n", self.qp_entries));
            }
            if self.speculate_epochs != 0 {
                out.push_str(&format!("speculate_epochs = {}\n", self.speculate_epochs));
            }
        }
        if let (Some(tn), Some(tr)) = (&self.tenancy, &self.traffic) {
            out.push_str("\n[tenants]\n");
            out.push_str(&format!("count = {}\n", tn.tenants));
            out.push_str(&format!("scheduler = \"{}\"\n", tn.scheduler.as_str()));
            out.push_str(&format!("weights = \"{}\"\n", tn.weights.as_str()));
            out.push_str("\n[traffic]\n");
            out.push_str(&format!("arrival = \"{}\"\n", tr.arrival.as_str()));
            out.push_str(&format!("rate_per_tenant = {}\n", tr.rate_per_tenant));
            out.push_str(&format!("duration_us = {}\n", tr.duration_us));
            out.push_str(&format!("zipf_addr = {}\n", tr.zipf_addr));
            out.push_str(&format!("zipf_dst = {}\n", tr.zipf_dst));
            out.push_str(&format!("burst = {}\n", tr.burst));
        }
        // A zero-count section renders as no section: the two are
        // behaviorally identical, and rendering them identically keeps
        // reports byte-identical too.
        if let Some(f) = self.faults.as_ref().filter(|f| !f.is_empty()) {
            out.push_str("\n[faults]\n");
            out.push_str(&format!("seed = {}\n", f.seed));
            out.push_str(&format!("degraded_links = {}\n", f.degraded_links));
            out.push_str(&format!("drop_prob = {}\n", f.drop_prob));
            out.push_str(&format!("corrupt_prob = {}\n", f.corrupt_prob));
            out.push_str(&format!("derate = {}\n", f.derate));
            out.push_str(&format!("credit_loss = {}\n", f.credit_loss));
            out.push_str(&format!("killed_links = {}\n", f.killed_links));
            out.push_str(&format!("kill_at_us = {}\n", f.kill_at_us));
            out.push_str(&format!("revive_at_us = {}\n", f.revive_at_us));
            out.push_str(&format!("crashed_nodes = {}\n", f.crashed_nodes));
            out.push_str(&format!("crash_at_us = {}\n", f.crash_at_us));
            out.push_str(&format!("restart_at_us = {}\n", f.restart_at_us));
            out.push_str(&format!("timeout_us = {}\n", f.timeout_us));
            out.push_str(&format!("max_retries = {}\n", f.max_retries));
        }
        // Likewise, a zero-interval [trace] table renders as no section.
        if let Some(t) = self.trace.as_ref().filter(|t| !t.is_empty()) {
            out.push_str("\n[trace]\n");
            out.push_str(&format!("interval_us = {}\n", t.interval_us));
            out.push_str(&format!("link_capacity = {}\n", t.link_capacity));
            out.push_str(&format!("node_capacity = {}\n", t.node_capacity));
            out.push_str(&format!("event_capacity = {}\n", t.event_capacity));
        }
        // And a zero-key [kv] table renders as no section.
        if let Some(kv) = self.kv.as_ref().filter(|kv| !kv.is_empty()) {
            out.push_str("\n[kv]\n");
            out.push_str(&format!("keys = {}\n", kv.keys));
            out.push_str(&format!("value_min = {}\n", kv.value_min));
            out.push_str(&format!("value_max = {}\n", kv.value_max));
            out.push_str(&format!("zipf_key = {}\n", kv.zipf_key));
            out.push_str(&format!("get_fraction = {}\n", kv.get_fraction));
            out.push_str(&format!("repeat_prob = {}\n", kv.repeat_prob));
            out.push_str(&format!("seed = {}\n", kv.seed));
        }
        out
    }

    /// Parses a flat TOML spec (comments and blank lines allowed; every
    /// key checked; unknown keys rejected).
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] on malformed lines, [`SpecError::Invalid`] on
    /// constraint violations.
    pub fn from_toml(text: &str) -> Result<ScenarioSpec, SpecError> {
        let mut spec = ScenarioSpec::default();
        let mut saw_name = false;
        let mut saw_nodes = false;
        /// Which TOML table the parser is inside.
        #[derive(PartialEq, Clone, Copy)]
        enum Section {
            Top,
            Tenants,
            Traffic,
            Execution,
            Faults,
            Trace,
            Kv,
        }
        let mut section = Section::Top;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parse_err = |msg: &str| SpecError::Parse(lineno, msg.to_string());
            if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| parse_err("unterminated section header"))?
                    .trim();
                section = match name {
                    "tenants" => {
                        spec.tenancy.get_or_insert_with(TenancySpec::default);
                        Section::Tenants
                    }
                    "traffic" => {
                        spec.traffic.get_or_insert_with(TrafficSpec::default);
                        Section::Traffic
                    }
                    "execution" => Section::Execution,
                    "faults" => {
                        spec.faults.get_or_insert_with(FaultSpec::default);
                        Section::Faults
                    }
                    "trace" => {
                        spec.trace.get_or_insert_with(TraceSpec::default);
                        Section::Trace
                    }
                    "kv" => {
                        spec.kv.get_or_insert_with(KvSpec::default);
                        Section::Kv
                    }
                    other => {
                        return Err(parse_err(&format!(
                            "unknown section [{other}] (tenants|traffic|execution|faults|trace|kv)"
                        )))
                    }
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| parse_err("expected `key = value`"))?;
            let key = key.trim();
            let value = parse_scalar(value.trim()).map_err(|m| SpecError::Parse(lineno, m))?;
            if section == Section::Tenants {
                let tn = spec.tenancy.as_mut().expect("section initialized");
                match key {
                    "count" => tn.tenants = value.into_u64(lineno, "count")? as usize,
                    "scheduler" => {
                        tn.scheduler = SchedPolicy::parse(&value.into_string(lineno, "scheduler")?)
                            .map_err(|m| SpecError::Parse(lineno, m))?;
                    }
                    "weights" => {
                        tn.weights = WeightMode::parse(&value.into_string(lineno, "weights")?)
                            .map_err(|m| SpecError::Parse(lineno, m))?;
                    }
                    other => {
                        return Err(SpecError::Parse(
                            lineno,
                            format!("unknown key {other:?} in [tenants]"),
                        ));
                    }
                }
                continue;
            }
            if section == Section::Execution {
                match key {
                    "threads" => spec.threads = value.into_u64(lineno, "threads")? as usize,
                    "qp_entries" => {
                        spec.qp_entries = value.into_u64(lineno, "qp_entries")? as u16;
                    }
                    "speculate_epochs" => {
                        spec.speculate_epochs =
                            value.into_u64(lineno, "speculate_epochs")? as usize;
                    }
                    other => {
                        return Err(SpecError::Parse(
                            lineno,
                            format!("unknown key {other:?} in [execution]"),
                        ));
                    }
                }
                continue;
            }
            if section == Section::Faults {
                let f = spec.faults.as_mut().expect("section initialized");
                match key {
                    "seed" => f.seed = value.into_u64(lineno, "seed")?,
                    "degraded_links" => {
                        f.degraded_links = value.into_u64(lineno, "degraded_links")? as usize;
                    }
                    "drop_prob" => f.drop_prob = value.into_f64(lineno, "drop_prob")?,
                    "corrupt_prob" => f.corrupt_prob = value.into_f64(lineno, "corrupt_prob")?,
                    "derate" => f.derate = value.into_f64(lineno, "derate")?,
                    "credit_loss" => {
                        f.credit_loss = value.into_u64(lineno, "credit_loss")? as usize;
                    }
                    "killed_links" => {
                        f.killed_links = value.into_u64(lineno, "killed_links")? as usize;
                    }
                    "kill_at_us" => f.kill_at_us = value.into_f64(lineno, "kill_at_us")?,
                    "revive_at_us" => f.revive_at_us = value.into_f64(lineno, "revive_at_us")?,
                    "crashed_nodes" => {
                        f.crashed_nodes = value.into_u64(lineno, "crashed_nodes")? as usize;
                    }
                    "crash_at_us" => f.crash_at_us = value.into_f64(lineno, "crash_at_us")?,
                    "restart_at_us" => {
                        f.restart_at_us = value.into_f64(lineno, "restart_at_us")?;
                    }
                    "timeout_us" => f.timeout_us = value.into_f64(lineno, "timeout_us")?,
                    "max_retries" => {
                        f.max_retries = value.into_u64(lineno, "max_retries")? as u32;
                    }
                    other => {
                        return Err(SpecError::Parse(
                            lineno,
                            format!("unknown key {other:?} in [faults]"),
                        ));
                    }
                }
                continue;
            }
            if section == Section::Trace {
                let t = spec.trace.as_mut().expect("section initialized");
                match key {
                    "interval_us" => t.interval_us = value.into_f64(lineno, "interval_us")?,
                    "link_capacity" => {
                        t.link_capacity = value.into_u64(lineno, "link_capacity")? as usize;
                    }
                    "node_capacity" => {
                        t.node_capacity = value.into_u64(lineno, "node_capacity")? as usize;
                    }
                    "event_capacity" => {
                        t.event_capacity = value.into_u64(lineno, "event_capacity")? as usize;
                    }
                    other => {
                        return Err(SpecError::Parse(
                            lineno,
                            format!("unknown key {other:?} in [trace]"),
                        ));
                    }
                }
                continue;
            }
            if section == Section::Kv {
                let kv = spec.kv.as_mut().expect("section initialized");
                match key {
                    "keys" => kv.keys = value.into_u64(lineno, "keys")?,
                    "value_min" => kv.value_min = value.into_u64(lineno, "value_min")?,
                    "value_max" => kv.value_max = value.into_u64(lineno, "value_max")?,
                    "zipf_key" => kv.zipf_key = value.into_f64(lineno, "zipf_key")?,
                    "get_fraction" => kv.get_fraction = value.into_f64(lineno, "get_fraction")?,
                    "repeat_prob" => kv.repeat_prob = value.into_f64(lineno, "repeat_prob")?,
                    "seed" => kv.seed = value.into_u64(lineno, "seed")?,
                    other => {
                        return Err(SpecError::Parse(
                            lineno,
                            format!("unknown key {other:?} in [kv]"),
                        ));
                    }
                }
                continue;
            }
            if section == Section::Traffic {
                let tr = spec.traffic.as_mut().expect("section initialized");
                match key {
                    "arrival" => {
                        tr.arrival = ArrivalKind::parse(&value.into_string(lineno, "arrival")?)
                            .map_err(|m| SpecError::Parse(lineno, m))?;
                    }
                    "rate_per_tenant" => {
                        tr.rate_per_tenant = value.into_f64(lineno, "rate_per_tenant")?;
                    }
                    "duration_us" => tr.duration_us = value.into_f64(lineno, "duration_us")?,
                    "zipf_addr" => tr.zipf_addr = value.into_f64(lineno, "zipf_addr")?,
                    "zipf_dst" => tr.zipf_dst = value.into_f64(lineno, "zipf_dst")?,
                    "burst" => tr.burst = value.into_u64(lineno, "burst")? as u32,
                    other => {
                        return Err(SpecError::Parse(
                            lineno,
                            format!("unknown key {other:?} in [traffic]"),
                        ));
                    }
                }
                continue;
            }
            match key {
                "name" => {
                    spec.name = value.into_string(lineno, "name")?;
                    saw_name = true;
                }
                "nodes" => {
                    spec.nodes = value.into_u64(lineno, "nodes")? as usize;
                    saw_nodes = true;
                }
                "topology" => {
                    spec.topology = parse_topology(&value.into_string(lineno, "topology")?)
                        .map_err(|m| SpecError::Parse(lineno, m))?;
                }
                "platform" => {
                    spec.platform = match value.into_string(lineno, "platform")?.as_str() {
                        "hardware" => PlatformSpec::Hardware,
                        "dev" => PlatformSpec::Dev,
                        other => {
                            return Err(SpecError::Parse(
                                lineno,
                                format!("unknown platform {other:?} (hardware|dev)"),
                            ))
                        }
                    };
                }
                "backend" => {
                    spec.backend = match value.into_string(lineno, "backend")?.as_str() {
                        "all" => BackendSel::All,
                        "sonuma" => BackendSel::One(BackendKind::Sonuma),
                        "rdma" => BackendSel::One(BackendKind::Rdma),
                        "tcp" => BackendSel::One(BackendKind::Tcp),
                        other => {
                            return Err(SpecError::Parse(
                                lineno,
                                format!("unknown backend {other:?} (sonuma|rdma|tcp|all)"),
                            ))
                        }
                    };
                }
                "workload" => {
                    spec.workload = match value.into_string(lineno, "workload")?.as_str() {
                        "uniform-read" => WorkloadKind::UniformRead,
                        "neighbor-read" => WorkloadKind::NeighborRead,
                        "mixed" => WorkloadKind::Mixed,
                        other => {
                            return Err(SpecError::Parse(
                                lineno,
                                format!(
                                    "unknown workload {other:?} \
                                     (uniform-read|neighbor-read|mixed)"
                                ),
                            ))
                        }
                    };
                }
                "read_fraction" => spec.read_fraction = value.into_f64(lineno, "read_fraction")?,
                "op_bytes" => spec.op_bytes = value.into_u64(lineno, "op_bytes")?,
                "ops_per_node" => spec.ops_per_node = value.into_u64(lineno, "ops_per_node")?,
                "window" => spec.window = value.into_u64(lineno, "window")? as usize,
                "segment_bytes" => spec.segment_bytes = value.into_u64(lineno, "segment_bytes")?,
                "seed" => spec.seed = value.into_u64(lineno, "seed")?,
                other => {
                    return Err(SpecError::Parse(lineno, format!("unknown key {other:?}")));
                }
            }
        }
        if !saw_name {
            return Err(SpecError::Invalid("missing required key `name`".into()));
        }
        if !saw_nodes {
            return Err(SpecError::Invalid("missing required key `nodes`".into()));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Human-readable topology label (`crossbar`, `torus2d:4x4`, ...).
    pub fn topology_label(&self) -> String {
        self.topology.render()
    }

    /// Human-readable workload label.
    pub fn workload_label(&self) -> &'static str {
        self.workload.as_str()
    }

    /// Human-readable backend-selection label.
    pub fn backend_label(&self) -> &'static str {
        self.backend.as_str()
    }

    /// The spec as an ordered JSON object (embedded in the report).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("nodes".into(), Json::Num(self.nodes as f64)),
            ("topology".into(), Json::Str(self.topology.render())),
            (
                "platform".into(),
                Json::Str(
                    match self.platform {
                        PlatformSpec::Hardware => "hardware",
                        PlatformSpec::Dev => "dev",
                    }
                    .into(),
                ),
            ),
            ("backend".into(), Json::Str(self.backend.as_str().into())),
            ("workload".into(), Json::Str(self.workload.as_str().into())),
            ("read_fraction".into(), Json::Num(self.read_fraction)),
            ("op_bytes".into(), Json::Num(self.op_bytes as f64)),
            ("ops_per_node".into(), Json::Num(self.ops_per_node as f64)),
            ("window".into(), Json::Num(self.window as f64)),
            ("segment_bytes".into(), Json::Num(self.segment_bytes as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("qp_entries".into(), Json::Num(self.qp_entries as f64)),
            (
                "speculate_epochs".into(),
                Json::Num(self.speculate_epochs as f64),
            ),
        ];
        if let (Some(tn), Some(tr)) = (&self.tenancy, &self.traffic) {
            members.push((
                "tenants".into(),
                Json::Obj(vec![
                    ("count".into(), Json::Num(tn.tenants as f64)),
                    ("scheduler".into(), Json::Str(tn.scheduler.as_str().into())),
                    ("weights".into(), Json::Str(tn.weights.as_str().into())),
                ]),
            ));
            members.push((
                "traffic".into(),
                Json::Obj(vec![
                    ("arrival".into(), Json::Str(tr.arrival.as_str().into())),
                    ("rate_per_tenant".into(), Json::Num(tr.rate_per_tenant)),
                    ("duration_us".into(), Json::Num(tr.duration_us)),
                    ("zipf_addr".into(), Json::Num(tr.zipf_addr)),
                    ("zipf_dst".into(), Json::Num(tr.zipf_dst)),
                    ("burst".into(), Json::Num(tr.burst as f64)),
                ]),
            ));
        }
        // Zero-count sections are omitted, mirroring `to_toml`.
        if let Some(f) = self.faults.as_ref().filter(|f| !f.is_empty()) {
            members.push((
                "faults".into(),
                Json::Obj(vec![
                    ("seed".into(), Json::Num(f.seed as f64)),
                    ("degraded_links".into(), Json::Num(f.degraded_links as f64)),
                    ("drop_prob".into(), Json::Num(f.drop_prob)),
                    ("corrupt_prob".into(), Json::Num(f.corrupt_prob)),
                    ("derate".into(), Json::Num(f.derate)),
                    ("credit_loss".into(), Json::Num(f.credit_loss as f64)),
                    ("killed_links".into(), Json::Num(f.killed_links as f64)),
                    ("kill_at_us".into(), Json::Num(f.kill_at_us)),
                    ("revive_at_us".into(), Json::Num(f.revive_at_us)),
                    ("crashed_nodes".into(), Json::Num(f.crashed_nodes as f64)),
                    ("crash_at_us".into(), Json::Num(f.crash_at_us)),
                    ("restart_at_us".into(), Json::Num(f.restart_at_us)),
                    ("timeout_us".into(), Json::Num(f.timeout_us)),
                    ("max_retries".into(), Json::Num(f.max_retries as f64)),
                ]),
            ));
        }
        if let Some(t) = self.trace.as_ref().filter(|t| !t.is_empty()) {
            members.push((
                "trace".into(),
                Json::Obj(vec![
                    ("interval_us".into(), Json::Num(t.interval_us)),
                    ("link_capacity".into(), Json::Num(t.link_capacity as f64)),
                    ("node_capacity".into(), Json::Num(t.node_capacity as f64)),
                    ("event_capacity".into(), Json::Num(t.event_capacity as f64)),
                ]),
            ));
        }
        if let Some(kv) = self.kv.as_ref().filter(|kv| !kv.is_empty()) {
            members.push((
                "kv".into(),
                Json::Obj(vec![
                    ("keys".into(), Json::Num(kv.keys as f64)),
                    ("value_min".into(), Json::Num(kv.value_min as f64)),
                    ("value_max".into(), Json::Num(kv.value_max as f64)),
                    ("zipf_key".into(), Json::Num(kv.zipf_key)),
                    ("get_fraction".into(), Json::Num(kv.get_fraction)),
                    ("repeat_prob".into(), Json::Num(kv.repeat_prob)),
                    ("seed".into(), Json::Num(kv.seed as f64)),
                ]),
            ));
        }
        Json::Obj(members)
    }
}

/// A scalar TOML value: quoted string or bare number.
enum Scalar {
    Str(String),
    Num(String),
}

impl Scalar {
    fn into_string(self, lineno: usize, key: &str) -> Result<String, SpecError> {
        match self {
            Scalar::Str(s) => Ok(s),
            Scalar::Num(_) => Err(SpecError::Parse(
                lineno,
                format!("{key} must be a quoted string"),
            )),
        }
    }

    fn into_u64(self, lineno: usize, key: &str) -> Result<u64, SpecError> {
        match self {
            Scalar::Num(n) => n
                .parse::<u64>()
                .map_err(|_| SpecError::Parse(lineno, format!("{key} must be an integer"))),
            Scalar::Str(_) => Err(SpecError::Parse(
                lineno,
                format!("{key} must be an unquoted integer"),
            )),
        }
    }

    fn into_f64(self, lineno: usize, key: &str) -> Result<f64, SpecError> {
        match self {
            Scalar::Num(n) => n
                .parse::<f64>()
                .map_err(|_| SpecError::Parse(lineno, format!("{key} must be a number"))),
            Scalar::Str(_) => Err(SpecError::Parse(
                lineno,
                format!("{key} must be an unquoted number"),
            )),
        }
    }
}

fn parse_scalar(value: &str) -> Result<Scalar, String> {
    if let Some(rest) = value.strip_prefix('"') {
        let end = rest.find('"').ok_or("unterminated string")?;
        let tail = rest[end + 1..].trim();
        if !tail.is_empty() && !tail.starts_with('#') {
            return Err(format!("trailing garbage after string: {tail:?}"));
        }
        return Ok(Scalar::Str(rest[..end].to_string()));
    }
    let bare = match value.find('#') {
        Some(i) => value[..i].trim(),
        None => value,
    };
    if bare.is_empty() {
        return Err("empty value".to_string());
    }
    Ok(Scalar::Num(bare.to_string()))
}

fn parse_topology(text: &str) -> Result<TopologySpec, String> {
    if text == "crossbar" {
        return Ok(TopologySpec::Crossbar);
    }
    let dims = |spec: &str| -> Result<Vec<usize>, String> {
        spec.split('x')
            .map(|d| {
                d.parse::<usize>()
                    .map_err(|_| format!("bad dimension {d:?}"))
            })
            .collect()
    };
    if let Some(rest) = text.strip_prefix("torus2d:") {
        let d = dims(rest)?;
        if d.len() != 2 {
            return Err("torus2d needs WxH".to_string());
        }
        return Ok(TopologySpec::Torus2d(d[0], d[1]));
    }
    if let Some(rest) = text.strip_prefix("torus3d:") {
        let d = dims(rest)?;
        if d.len() != 3 {
            return Err("torus3d needs XxYxZ".to_string());
        }
        return Ok(TopologySpec::Torus3d(d[0], d[1], d[2]));
    }
    Err(format!(
        "unknown topology {text:?} (crossbar|torus2d:WxH|torus3d:XxYxZ)"
    ))
}

// ---------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------

/// Per-tenant outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Cluster-wide tenant id.
    pub tenant: u32,
    /// Home node the tenant posts from.
    pub node: u16,
    /// SLO class.
    pub class: SloClass,
    /// WDRR weight.
    pub weight: u32,
    /// Arrivals the generator offered within the horizon.
    pub offered: u64,
    /// Operations completed.
    pub ops: u64,
    /// Completions with an error status.
    pub errors: u64,
    /// Arrival-to-completion latency distribution (includes software
    /// queueing — the number a tenant actually experiences).
    pub hist: LatencyHistogram,
}

/// Fabric-level congestion counters of one soNUMA run.
#[derive(Debug, Clone)]
pub struct FabricSummary {
    /// Total bytes injected into the fabric.
    pub bytes: u64,
    /// Total packets injected.
    pub packets: u64,
    /// Credit stalls summed over every link and lane.
    pub credit_stalls: u64,
    /// Packets per virtual lane `[requests, replies]`.
    pub lane_packets: [u64; 2],
    /// Directed links that carried traffic.
    pub links_observed: usize,
    /// The hottest links by bytes (capped; see [`MAX_REPORTED_LINKS`]).
    pub hot_links: Vec<LinkStats>,
}

/// How many per-link rows a report includes (the hottest by bytes); the
/// aggregate counters always cover every link.
pub const MAX_REPORTED_LINKS: usize = 16;

/// How many per-tenant detail rows a report includes (lowest ids first).
/// The truncation is explicit (`detail_shown` / `detail_truncated`), and
/// the fairness index and per-class aggregates always cover every
/// tenant — only the row dump is capped, so thousand-tenant reports stay
/// reviewable.
pub const MAX_REPORTED_TENANTS: usize = 64;

/// Fault-injection outcome of one soNUMA run under a non-empty
/// `[faults]` section: what was injected, what the fabric did, what the
/// source-side recovery machinery did about it, and how fast goodput
/// returned after the scheduled onset.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// Directed links the plan degraded.
    pub links_degraded: usize,
    /// Directed links the plan killed.
    pub links_killed: usize,
    /// Nodes the plan crashed.
    pub nodes_crashed: usize,
    /// Packets the fabric dropped on faulty links.
    pub dropped: u64,
    /// Packets delivered corrupted (discarded by the receiving RMC).
    pub corrupted: u64,
    /// Packets routed around dead links.
    pub rerouted: u64,
    /// Packets with no live route at all.
    pub unreachable: u64,
    /// Node-crash events executed.
    pub crashes: u64,
    /// Packets discarded because the destination was down.
    pub crash_drops: u64,
    /// Retransmission deadlines that fired with lines missing.
    pub rgp_timeouts: u64,
    /// Line requests re-injected by the retransmission path.
    pub rgp_retransmits: u64,
    /// Corrupt packets the receiving RMCs discarded.
    pub rrpp_corrupt_drops: u64,
    /// Operations that completed with an error status (retry exhaustion
    /// and crash aborts included).
    pub aborted: u64,
    /// Successful operations over offered (open-loop) or total
    /// (closed-loop) operations: goodput under failure.
    pub goodput_fraction: f64,
    /// Simulated microsecond the first scheduled fault fired (`None` for
    /// degradation-only plans, which have no onset).
    pub onset_us: Option<f64>,
    /// Mean successful completions per simulated microsecond before the
    /// onset (0 when there is no onset or no pre-onset window).
    pub prefault_ops_per_us: f64,
    /// Microseconds after the onset until a 1 µs bin first reached 90 %
    /// of the pre-fault completion rate (`None` if it never did).
    pub recovery_us: Option<f64>,
    /// Whether goodput recovered to ≥ 90 % of the pre-fault rate (always
    /// true for plans with no onset).
    pub recovered: bool,
    /// Gold-class p99 latency in ns (tenancy runs with gold tenants).
    pub gold_p99_ns: Option<f64>,
    /// Bronze-class p99 latency in ns (tenancy runs with bronze tenants).
    pub bronze_p99_ns: Option<f64>,
}

/// One value-size class of a KV run: every key whose value is `bytes`
/// long, with separate GET (one-sided read) and PUT (fill-path write)
/// latency distributions — the raw data of the crossover table.
#[derive(Debug, Clone)]
pub struct KvClassOutcome {
    /// Value bytes of this class.
    pub bytes: u64,
    /// Keys the directory assigned to this class.
    pub keys: u64,
    /// GETs completed against this class.
    pub gets: u64,
    /// PUTs completed against this class.
    pub puts: u64,
    /// Arrival-to-completion GET latencies.
    pub get_hist: LatencyHistogram,
    /// Arrival-to-completion PUT latencies.
    pub put_hist: LatencyHistogram,
}

/// KV-service outcome of one run under a non-empty `[kv]` section:
/// directory-plane totals, payload-verification failures (always 0),
/// and the per-value-size-class latency rows.
#[derive(Debug, Clone)]
pub struct KvOutcome {
    /// Keys in the directory.
    pub keys: u64,
    /// GETs completed (successfully).
    pub gets: u64,
    /// PUTs completed (successfully).
    pub puts: u64,
    /// GET payloads that failed byte-for-byte verification against the
    /// deterministic value image. Must stay 0 — a nonzero count means
    /// the one-sided data path corrupted or tore a value.
    pub corrupt: u64,
    /// Cache lines moved by completed GETs (the one-sided data-plane
    /// volume in fabric-packet terms).
    pub get_lines: u64,
    /// Bytes moved by completed GETs.
    pub get_bytes: u64,
    /// Bytes moved by completed PUTs.
    pub put_bytes: u64,
    /// Per-value-size-class rows, smallest class first.
    pub classes: Vec<KvClassOutcome>,
}

/// Metrics of one spec running over one backend.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Transport label (`RemoteBackend::label`).
    pub backend: String,
    /// Operations completed.
    pub ops: u64,
    /// Arrivals offered by the open-loop generator (equals `ops` when the
    /// run kept up; 0 for closed-loop runs, which have no offered load).
    pub offered_ops: u64,
    /// Payload bytes moved by completed operations.
    pub payload_bytes: u64,
    /// Operations that completed with an error status.
    pub errors: u64,
    /// Total simulated time.
    pub sim_time: SimTime,
    /// Completed operations per simulated second.
    pub ops_per_sec: f64,
    /// Payload bandwidth over simulated time, Gbps.
    pub gbps: f64,
    /// Median post-to-completion latency.
    pub p50: SimTime,
    /// 99th-percentile post-to-completion latency.
    pub p99: SimTime,
    /// 99.9th-percentile post-to-completion latency.
    pub p999: SimTime,
    /// Mean post-to-completion latency.
    pub mean: SimTime,
    /// Logical events the backend processed (engine events plus
    /// injections folded into batched burst events — invariant under
    /// batching configuration).
    pub events: u64,
    /// Host wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Host-side engine throughput: `events / wall_secs`. This is the
    /// metric the CI bench-smoke lane gates on.
    pub wall_events_per_sec: f64,
    /// Host-side fabric throughput: fabric packets over `wall_secs`
    /// (0 for backends without a modeled fabric). Packet counts are a
    /// pure function of the spec, so this is the cleanest wall-clock
    /// figure of merit for the fabric hot path; the bench-smoke lane
    /// gates it alongside events/sec.
    pub wall_packets_per_sec: f64,
    /// Host wall-clock seconds world construction took (best across
    /// repetitions) — reported separately from `wall_secs` (drive time)
    /// so the parallel-construction win is gated on its own.
    pub wall_construct_secs: f64,
    /// Host threads the spec requested for this run.
    pub threads: usize,
    /// Shards the backend actually executed with (1 for the modeled
    /// baselines, which have no internal parallelism).
    pub shards: usize,
    /// Conservative epochs the sharded engine ran (soNUMA; 0 otherwise).
    /// Shard *metadata*: with the distance-aware lookahead matrix the
    /// epoch structure depends on the partition, so this is excluded
    /// from the parallel-equivalence diff.
    pub epochs: u64,
    /// Logical events executed per shard (soNUMA runs only). Shard
    /// *metadata*: depends on the partition, excluded from the
    /// parallel-equivalence diff.
    pub shard_events: Vec<u64>,
    /// Fabric links the shard partition cuts (0 on one shard). Shard
    /// metadata, like `shard_events`.
    pub cut_links: usize,
    /// `(min, max)` over the per-shard-pair lookahead matrix (soNUMA
    /// runs only; both zero otherwise). Shard metadata.
    pub lookahead_bounds: Option<(SimTime, SimTime)>,
    /// Cross-shard deliveries that beat the lookahead matrix's promise.
    /// Must be 0 — recorded so a report can prove the conservative
    /// bound held, not just assume it.
    pub pair_bound_violations: u64,
    /// Estimated resident heap bytes of the simulated machine at the end
    /// of the run (soNUMA runs only) — the rack4096 memory-diet metric.
    pub resident_bytes: u64,
    /// `(committed, rolled_back)` speculative clock bets the sharded
    /// engine settled (soNUMA runs with `speculate_epochs > 0`). Shard
    /// metadata: depends on host scheduling, excluded from the
    /// parallel-equivalence diff.
    pub speculation: Option<(u64, u64)>,
    /// Wall ratio (threads=1 time over this run's time) and serial epoch
    /// count from a `--compare-threads` companion run, if one was made.
    pub compare_serial: Option<CompareSerial>,
    /// Cluster-wide pipeline counters (soNUMA runs only).
    pub pipeline_total: Option<PipelineStats>,
    /// Per-node pipeline counters, indexed by node id (soNUMA runs only).
    pub per_node: Vec<PipelineStats>,
    /// Per-tenant outcomes (open-loop tenancy runs only), by tenant id.
    pub tenants: Vec<TenantOutcome>,
    /// Fabric congestion counters (soNUMA runs only).
    pub fabric: Option<FabricSummary>,
    /// Successful completions per 1 µs of simulated time, indexed by
    /// microsecond — the recovery-time raw data. Populated only when the
    /// spec injects faults; empty otherwise.
    pub ok_bins_1us: Vec<u64>,
    /// Fault-injection outcome (soNUMA runs under a non-empty `[faults]`
    /// section only).
    pub faults: Option<FaultOutcome>,
    /// Flight-recorder outcome (soNUMA runs under a non-empty `[trace]`
    /// section only).
    pub trace: Option<TraceOutcome>,
    /// KV-service outcome (runs under a non-empty `[kv]` section only —
    /// all backends, unlike the soNUMA-only sections above).
    pub kv: Option<KvOutcome>,
}

/// What the flight recorder captured during the first (traced) drive of
/// a run. The timing repetitions run untraced, so `wall_overhead_secs`
/// is the traced drive's wall time minus the best untraced wall time —
/// a direct measurement of what arming the recorder costs.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// Sampling cadence in simulated microseconds.
    pub interval_us: f64,
    /// Recorder ring tallies (samples captured and overwritten).
    pub summary: sonuma_trace::TraceSummary,
    /// `(window, tenant)` samples from the open-loop driver (0 for
    /// closed-loop runs).
    pub tenant_samples: u64,
    /// The rendered JSON-lines trace (what `--trace-out` writes).
    pub text: String,
    /// Traced wall seconds minus the best untraced repetition's wall
    /// seconds (clamped at 0; 0 when timing repetitions were skipped).
    pub wall_overhead_secs: f64,
}

/// Wall-clock comparison against a `--threads 1` companion run of the
/// same spec (the `--compare-threads` mode). Simulated metrics are
/// byte-identical by the determinism contract — only host time and the
/// epoch structure differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareSerial {
    /// Best-of-reps wall seconds of the single-thread run.
    pub wall_secs: f64,
    /// Serial wall time over this run's wall time (> 1 means the shards
    /// paid off).
    pub wall_ratio: f64,
    /// Epochs the single-shard engine ran. With the lookahead matrix the
    /// epoch structure is partition-dependent (each shard pair earns its
    /// own horizon), so this differs from the sharded `epochs`.
    pub epochs: u64,
}

impl BackendRun {
    /// Each tenant's delivered fraction (achieved / offered), skipping
    /// tenants that offered nothing. This is the allocation vector the
    /// fairness index is computed over: under a feasible load every
    /// entry is 1; under overload the scheduler's split shows.
    pub fn delivered_fractions(&self) -> Vec<f64> {
        self.tenants
            .iter()
            .filter(|t| t.offered > 0)
            .map(|t| t.ops as f64 / t.offered as f64)
            .collect()
    }

    /// Jain's fairness index over [`BackendRun::delivered_fractions`].
    pub fn jain_fairness(&self) -> f64 {
        jain_index(&self.delivered_fractions())
    }

    /// The merged arrival-to-completion histogram of every tenant in
    /// `class` (`None` when no tenant of that class exists).
    pub fn class_histogram(&self, class: SloClass) -> Option<LatencyHistogram> {
        let mut hist = LatencyHistogram::new();
        let mut any = false;
        for t in self.tenants.iter().filter(|t| t.class == class) {
            hist.merge_from(&t.hist);
            any = true;
        }
        any.then_some(hist)
    }
}

/// One executed scenario: the spec plus one run per backend.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The spec that was executed.
    pub spec: ScenarioSpec,
    /// One entry per requested backend, in [`BackendSel::kinds`] order.
    pub runs: Vec<BackendRun>,
}

enum BackendInstance {
    Sonuma(Box<SonumaBackend>),
    Rdma(Box<RdmaBackend>),
    Tcp(Box<TcpBackend>),
}

impl BackendInstance {
    fn build(spec: &ScenarioSpec, kind: BackendKind) -> BackendInstance {
        match kind {
            BackendKind::Sonuma => {
                let mut config = match spec.platform {
                    PlatformSpec::Hardware => MachineConfig::simulated_hardware(spec.nodes),
                    PlatformSpec::Dev => MachineConfig::dev_platform(spec.nodes),
                };
                config.fabric = spec.topology.to_config(spec.nodes);
                config.qp_entries = spec.qp_entries;
                if let Some(f) = &spec.faults {
                    // `instantiate` returns None for zero-count sections,
                    // leaving the fault-free fast path untouched.
                    config.fabric.faults = f.instantiate(&config.fabric.topology);
                }
                if let Some(tn) = &spec.tenancy {
                    config.sched_policy = tn.scheduler;
                }
                let mut backend =
                    SonumaBackend::with_threads(config, spec.segment_bytes, spec.threads);
                backend.set_speculation(spec.speculate_epochs as u32);
                if let Some(tn) = &spec.tenancy {
                    // Every tenant gets a dedicated QP on its home node,
                    // registered under its weight and SLO class so the
                    // RGP's QoS scheduler arbitrates real queues.
                    for t in 0..tn.tenants {
                        let class = tenant_class(t, tn.tenants);
                        backend.register_tenant_channel(
                            NodeId((t % spec.nodes) as u16),
                            (t / spec.nodes) as u32,
                            TenantId(t as u32),
                            class_weight(tn.weights, class),
                            class,
                        );
                    }
                }
                BackendInstance::Sonuma(Box::new(backend))
            }
            BackendKind::Rdma => {
                let mut b = Box::new(RdmaBackend::connectx3(spec.nodes, spec.segment_bytes));
                // Thread-count hint: the modeled baselines have no internal
                // parallelism and ignore it (default trait impl).
                b.set_threads(spec.threads);
                BackendInstance::Rdma(b)
            }
            BackendKind::Tcp => {
                let mut b = Box::new(TcpBackend::calxeda(spec.nodes, spec.segment_bytes));
                b.set_threads(spec.threads);
                BackendInstance::Tcp(b)
            }
        }
    }

    fn as_dyn(&mut self) -> &mut dyn RemoteBackend {
        match self {
            BackendInstance::Sonuma(b) => b.as_mut(),
            BackendInstance::Rdma(b) => b.as_mut(),
            BackendInstance::Tcp(b) => b.as_mut(),
        }
    }
}

/// Deterministic per-node request generator.
struct RequestGen {
    rng: DetRng,
    issued: u64,
}

impl RequestGen {
    fn next(&mut self, spec: &ScenarioSpec, node: usize) -> RemoteRequest {
        let i = self.issued;
        self.issued += 1;
        let slots = (spec.segment_bytes - spec.op_bytes) / 64;
        let peer = |rng: &mut DetRng| {
            let d = rng.below(spec.nodes as u64 - 1);
            let d = if d >= node as u64 { d + 1 } else { d };
            NodeId(d as u16)
        };
        match spec.workload {
            WorkloadKind::UniformRead => {
                let dst = peer(&mut self.rng);
                let offset = self.rng.below(slots + 1) * 64;
                RemoteRequest::read(dst, offset, spec.op_bytes)
            }
            WorkloadKind::NeighborRead => {
                let dst = NodeId(((node + 1) % spec.nodes) as u16);
                let offset = (i * spec.op_bytes) % (slots * 64).max(64);
                RemoteRequest::read(dst, offset / 64 * 64, spec.op_bytes)
            }
            WorkloadKind::Mixed => {
                let dst = peer(&mut self.rng);
                let offset = self.rng.below(slots + 1) * 64;
                if self.rng.chance(spec.read_fraction) {
                    RemoteRequest::read(dst, offset, spec.op_bytes)
                } else {
                    let fill = (node as u8) ^ (i as u8) ^ 0xA5;
                    RemoteRequest::write(dst, offset, vec![fill; spec.op_bytes as usize])
                }
            }
        }
    }
}

/// Drives `spec`'s request stream over one backend to completion.
///
/// Latencies are measured post-to-observation: a completion is
/// timestamped with `backend.now()` at the poll following the `advance`
/// burst that executed it, so they are exact for the one-event-per-call
/// baselines and late by at most one burst's simulated span (64 engine
/// events) for soNUMA.
fn drive(spec: &ScenarioSpec, backend: &mut dyn RemoteBackend) -> BackendRun {
    let nodes = spec.nodes;
    let started = Instant::now();
    let mut root = DetRng::seed(spec.seed);
    let mut gens: Vec<RequestGen> = (0..nodes)
        .map(|n| RequestGen {
            rng: root.fork(n as u64),
            issued: 0,
        })
        .collect();
    // token -> (post time ps, payload bytes); filled at post, drained at
    // completion. Never iterated, so the HashMap order cannot leak into
    // the results.
    let mut pending: Vec<HashMap<u64, (u64, u64)>> = (0..nodes).map(|_| HashMap::new()).collect();
    let mut remaining: Vec<u64> = vec![spec.ops_per_node; nodes];
    let mut hist = LatencyHistogram::new();
    let mut ops = 0u64;
    let mut payload_bytes = 0u64;
    let mut errors = 0u64;
    let track_bins = spec.faults.as_ref().is_some_and(|f| !f.is_empty());
    let mut ok_bins: Vec<u64> = Vec::new();

    loop {
        let mut posted_any = false;
        for n in 0..nodes {
            while remaining[n] > 0 && pending[n].len() < spec.window {
                let req = gens[n].next(spec, n);
                let bytes = spec.op_bytes;
                match backend.post(NodeId(n as u16), req) {
                    Ok(token) => {
                        pending[n].insert(token, (backend.now().as_ps(), bytes));
                        remaining[n] -= 1;
                        posted_any = true;
                    }
                    Err(sonuma_core::BackendError::Backpressure) => break,
                    Err(e) => panic!("scenario {} post failed on {n}: {e}", spec.name),
                }
            }
        }
        let more = backend.advance();
        let now = backend.now();
        for (n, node_pending) in pending.iter_mut().enumerate() {
            for c in backend.poll(NodeId(n as u16)) {
                let (posted_ps, bytes) = node_pending
                    .remove(&c.token)
                    .expect("completion for unknown token");
                ops += 1;
                if c.status.is_ok() {
                    // Only successful operations shape the latency
                    // distribution — an abort is accounted as an error,
                    // not as a (meaningless) fast completion.
                    hist.record(now.saturating_sub(SimTime::from_ps(posted_ps)));
                    payload_bytes += bytes;
                    if track_bins {
                        record_ok_bin(&mut ok_bins, now);
                    }
                } else {
                    errors += 1;
                }
            }
        }
        let inflight: usize = pending.iter().map(HashMap::len).sum();
        if !more && !posted_any && inflight == 0 && remaining.iter().all(|&r| r == 0) {
            break;
        }
    }

    let sim_time = backend.now();
    let wall_secs = started.elapsed().as_secs_f64();
    let events = backend.events_processed();
    BackendRun {
        backend: backend.label().to_string(),
        ops,
        offered_ops: 0,
        payload_bytes,
        errors,
        sim_time,
        ops_per_sec: sonuma_sim::stats::ops_per_sec(ops, sim_time),
        gbps: sonuma_sim::stats::gbps(payload_bytes, sim_time),
        p50: hist.percentile(0.50),
        p99: hist.percentile(0.99),
        p999: hist.percentile(0.999),
        mean: hist.mean(),
        events,
        wall_secs,
        wall_events_per_sec: if wall_secs > 0.0 {
            events as f64 / wall_secs
        } else {
            0.0
        },
        // Fabric packet rate is attached by `run_spec` for soNUMA runs.
        wall_packets_per_sec: 0.0,
        // Construction wall time is attached by `run_spec`.
        wall_construct_secs: 0.0,
        // Sharding metadata is attached by `run_spec`.
        threads: 1,
        shards: 1,
        epochs: 0,
        shard_events: Vec::new(),
        cut_links: 0,
        lookahead_bounds: None,
        pair_bound_violations: 0,
        resident_bytes: 0,
        speculation: None,
        compare_serial: None,
        // Pipeline counters are attached by `run_spec` for soNUMA runs.
        pipeline_total: None,
        per_node: Vec::new(),
        tenants: Vec::new(),
        fabric: None,
        ok_bins_1us: ok_bins,
        // The fault outcome is attached by `run_spec` for soNUMA runs.
        faults: None,
        // The trace outcome is attached by `run_spec` for soNUMA runs.
        trace: None,
        kv: None,
    }
}

/// Recovery analysis over the 1 µs goodput bins:
/// `(prefault_ops_per_us, recovery_us, recovered)`.
///
/// The pre-fault rate is the mean successful-completion rate over every
/// whole microsecond before the onset; recovery is the first bin at or
/// after the onset that reaches 90 % of it. Plans without a scheduled
/// onset (pure degradation) trivially count as recovered — there is no
/// event to recover *from*.
fn recovery_metrics(bins: &[u64], onset_us: Option<f64>) -> (f64, Option<f64>, bool) {
    let Some(onset) = onset_us else {
        return (0.0, None, true);
    };
    let onset_bin = onset as usize;
    if onset_bin == 0 {
        return (0.0, None, false);
    }
    let pre_window = onset_bin.min(bins.len());
    let pre: u64 = bins[..pre_window].iter().sum();
    let pre_rate = pre as f64 / onset_bin as f64;
    if pre_rate <= 0.0 {
        return (0.0, None, false);
    }
    let target = pre_rate * 0.9;
    for (i, &b) in bins.iter().enumerate().skip(onset_bin) {
        if b as f64 >= target {
            return (pre_rate, Some((i + 1 - onset_bin) as f64), true);
        }
    }
    (pre_rate, None, false)
}

/// Accounts one successful completion at simulated time `now` into the
/// 1 µs recovery bins.
fn record_ok_bin(bins: &mut Vec<u64>, now: SimTime) {
    let us = (now.as_ps() / 1_000_000) as usize;
    if bins.len() <= us {
        bins.resize(us + 1, 0);
    }
    bins[us] += 1;
}

/// One tenant's live state inside the open-loop driver.
struct TenantDriver {
    home: usize,
    channel: u32,
    class: SloClass,
    weight: u32,
    rng: DetRng,
    arrivals: ArrivalGen,
    /// Arrived-but-not-yet-posted requests (head blocked on WQ space).
    backlog: VecDeque<(u64, RemoteRequest)>,
    offered: u64,
    completed: u64,
    errors: u64,
    hist: LatencyHistogram,
}

/// Drives `spec`'s open-loop tenant streams over one backend until every
/// arrival within the horizon has been offered, posted, and completed.
///
/// Arrivals are generated per tenant by seeded [`ArrivalGen`]s; requests
/// pick their destination node and remote address through the spec's
/// Zipf samplers. Latency is measured **arrival-to-completion** — an
/// operation stuck behind a noisy neighbor's backlog accrues queueing
/// delay even before its WQ post succeeds, which is exactly the tail a
/// tenant observes.
fn drive_open_loop(
    spec: &ScenarioSpec,
    backend: &mut dyn RemoteBackend,
    mut flow: Option<&mut sonuma_trace::TenantFlow>,
) -> BackendRun {
    let tn = spec.tenancy.as_ref().expect("open-loop spec");
    let tr = spec.traffic.as_ref().expect("open-loop spec");
    let nodes = spec.nodes;
    let started = Instant::now();
    let horizon_ps = (tr.duration_us * 1e6) as u64;
    // Zipf support over whole-op slots; capped so the CDF table stays
    // small for huge segments (the hot set is what skew is about).
    let slots = ((spec.segment_bytes - spec.op_bytes) / spec.op_bytes + 1).min(1 << 16) as usize;
    let addr_sampler = ZipfSampler::new(slots, tr.zipf_addr);
    let dst_sampler = ZipfSampler::new(nodes, tr.zipf_dst);

    let mut root = DetRng::seed(spec.seed);
    let mut tenants: Vec<TenantDriver> = (0..tn.tenants)
        .map(|t| {
            let class = tenant_class(t, tn.tenants);
            TenantDriver {
                home: t % nodes,
                channel: (t / nodes) as u32,
                class,
                weight: class_weight(tn.weights, class),
                rng: root.fork(t as u64),
                arrivals: ArrivalGen::new(tr.arrival, tr.rate_per_tenant, tr.burst),
                backlog: VecDeque::new(),
                offered: 0,
                completed: 0,
                errors: 0,
                hist: LatencyHistogram::new(),
            }
        })
        .collect();
    // token -> (tenant, arrival ps, payload bytes), per posting node
    // (tokens are unique per node across channels).
    let mut pending: Vec<HashMap<u64, (usize, u64, u64)>> =
        (0..nodes).map(|_| HashMap::new()).collect();
    let mut hist = LatencyHistogram::new();
    let mut ops = 0u64;
    let mut payload_bytes = 0u64;
    let mut errors = 0u64;
    let track_bins = spec.faults.as_ref().is_some_and(|f| !f.is_empty());
    let mut ok_bins: Vec<u64> = Vec::new();

    loop {
        let now_ps = backend.now().as_ps();
        // 1. Materialize every arrival that is due, in tenant order.
        for (idx, t) in tenants.iter_mut().enumerate() {
            while t.arrivals.peek_ps() <= now_ps {
                let Some(at) = t.arrivals.next_arrival(&mut t.rng, horizon_ps) else {
                    break;
                };
                let dst_rank = dst_sampler.sample(&mut t.rng);
                let dst = if dst_rank == t.home {
                    NodeId(((dst_rank + 1) % nodes) as u16)
                } else {
                    NodeId(dst_rank as u16)
                };
                let offset = addr_sampler.sample(&mut t.rng) as u64 * spec.op_bytes;
                let req = if t.rng.chance(spec.read_fraction) {
                    RemoteRequest::read(dst, offset, spec.op_bytes)
                } else {
                    let fill = (idx as u8) ^ (t.offered as u8) ^ 0x5A;
                    RemoteRequest::write(dst, offset, vec![fill; spec.op_bytes as usize])
                };
                t.backlog.push_back((at, req));
                t.offered += 1;
            }
        }
        // 2. Post as much backlog as the queues accept, in tenant order.
        let mut posted_any = false;
        for (idx, t) in tenants.iter_mut().enumerate() {
            while let Some((at, req)) = t.backlog.front() {
                match backend.post_on(NodeId(t.home as u16), t.channel, req.clone()) {
                    Ok(token) => {
                        pending[t.home].insert(token, (idx, *at, spec.op_bytes));
                        t.backlog.pop_front();
                        posted_any = true;
                    }
                    Err(sonuma_core::BackendError::Backpressure) => break,
                    Err(e) => panic!("scenario {} tenant post failed: {e}", spec.name),
                }
            }
        }
        // 3. Make progress and account completions.
        let more = backend.advance();
        let now = backend.now();
        for (n, node_pending) in pending.iter_mut().enumerate() {
            for c in backend.poll(NodeId(n as u16)) {
                let (idx, at, bytes) = node_pending
                    .remove(&c.token)
                    .expect("completion for unknown token");
                let lat = now.saturating_sub(SimTime::from_ps(at));
                let t = &mut tenants[idx];
                t.completed += 1;
                ops += 1;
                if c.status.is_ok() {
                    // Aborted operations are errors, not latency samples:
                    // a fast failure must not flatter the tail.
                    t.hist.record(lat);
                    hist.record(lat);
                    payload_bytes += bytes;
                    if track_bins {
                        record_ok_bin(&mut ok_bins, now);
                    }
                    // The tenant sampler bins by simulated completion
                    // time, so the partition-dependent poll order of the
                    // sharded backend cannot leak into the trace.
                    if let Some(flow) = flow.as_deref_mut() {
                        flow.record(now, idx as u32, lat);
                    }
                } else {
                    errors += 1;
                    t.errors += 1;
                }
            }
        }
        // 4. Terminate, or jump the idle clock to the next arrival.
        let backlogged = tenants.iter().any(|t| !t.backlog.is_empty());
        let inflight: usize = pending.iter().map(HashMap::len).sum();
        if !more && !posted_any && !backlogged && inflight == 0 {
            let next = tenants
                .iter()
                .map(|t| t.arrivals.peek_ps())
                .filter(|&p| p <= horizon_ps)
                .min();
            match next {
                Some(p) => backend.advance_clock_to(SimTime::from_ps(p)),
                None => break,
            }
        }
    }

    let sim_time = backend.now();
    let wall_secs = started.elapsed().as_secs_f64();
    let events = backend.events_processed();
    let offered_ops = tenants.iter().map(|t| t.offered).sum();
    let outcomes = tenants
        .into_iter()
        .enumerate()
        .map(|(t, d)| TenantOutcome {
            tenant: t as u32,
            node: d.home as u16,
            class: d.class,
            weight: d.weight,
            offered: d.offered,
            ops: d.completed,
            errors: d.errors,
            hist: d.hist,
        })
        .collect();
    BackendRun {
        backend: backend.label().to_string(),
        ops,
        offered_ops,
        payload_bytes,
        errors,
        sim_time,
        ops_per_sec: sonuma_sim::stats::ops_per_sec(ops, sim_time),
        gbps: sonuma_sim::stats::gbps(payload_bytes, sim_time),
        p50: hist.percentile(0.50),
        p99: hist.percentile(0.99),
        p999: hist.percentile(0.999),
        mean: hist.mean(),
        events,
        wall_secs,
        wall_events_per_sec: if wall_secs > 0.0 {
            events as f64 / wall_secs
        } else {
            0.0
        },
        wall_packets_per_sec: 0.0,
        wall_construct_secs: 0.0,
        threads: 1,
        shards: 1,
        epochs: 0,
        shard_events: Vec::new(),
        cut_links: 0,
        lookahead_bounds: None,
        pair_bound_violations: 0,
        resident_bytes: 0,
        speculation: None,
        compare_serial: None,
        pipeline_total: None,
        per_node: Vec::new(),
        tenants: outcomes,
        fabric: None,
        ok_bins_1us: ok_bins,
        faults: None,
        trace: None,
        kv: None,
    }
}

/// Drives the KV-cache service scenario over one backend: every value is
/// preloaded at its directory placement, then the open-loop tenant
/// streams issue GETs (one multi-line one-sided read each, payload
/// verified byte-for-byte against the deterministic value image) and
/// PUTs (the messaging-style fill path: a write pushing the full value),
/// with Zipf-skewed hot keys and repeat-read locality. Structure mirrors
/// [`drive_open_loop`] exactly — same arrival machinery, same
/// arrival-to-completion latency, same termination — so the determinism
/// contract (byte-identical across `--threads`/`--speculate`) carries
/// over unchanged.
fn drive_kv(
    spec: &ScenarioSpec,
    backend: &mut dyn RemoteBackend,
    mut flow: Option<&mut sonuma_trace::TenantFlow>,
) -> BackendRun {
    let tn = spec.tenancy.as_ref().expect("kv spec has [tenants]");
    let tr = spec.traffic.as_ref().expect("kv spec has [traffic]");
    let kv = spec.kv.as_ref().expect("kv spec");
    let nodes = spec.nodes;
    let started = Instant::now();
    let horizon_ps = (tr.duration_us * 1e6) as u64;
    let dir = kv
        .directory(nodes, spec.segment_bytes)
        .expect("directory fit proved by validate()");

    // Preload every value image at its placement, so the first GET of a
    // never-PUT key still verifies.
    let mut image = vec![0u8; kv.value_max as usize];
    for key in 0..dir.keys() {
        let p = dir.lookup(key);
        sonuma_apps::fill_value(key, &mut image[..p.len as usize]);
        backend.write_ctx(NodeId(p.node as u16), p.offset, &image[..p.len as usize]);
    }

    let key_sampler = ZipfSampler::new(dir.keys() as usize, kv.zipf_key);
    let mut root = DetRng::seed(spec.seed);
    let mut kv_root = DetRng::seed(kv.seed);
    // Per-tenant KV decision streams (op mix, key choice, repeats) are
    // forked from the [kv] seed, independent of the arrival streams.
    let mut kv_rngs: Vec<DetRng> = (0..tn.tenants).map(|t| kv_root.fork(t as u64)).collect();
    let mut last_key: Vec<Option<u64>> = vec![None; tn.tenants];
    let mut tenants: Vec<TenantDriver> = (0..tn.tenants)
        .map(|t| {
            let class = tenant_class(t, tn.tenants);
            TenantDriver {
                home: t % nodes,
                channel: (t / nodes) as u32,
                class,
                weight: class_weight(tn.weights, class),
                rng: root.fork(t as u64),
                arrivals: ArrivalGen::new(tr.arrival, tr.rate_per_tenant, tr.burst),
                backlog: VecDeque::new(),
                offered: 0,
                completed: 0,
                errors: 0,
                hist: LatencyHistogram::new(),
            }
        })
        .collect();
    // token -> (tenant, arrival ps, key, is_get), per posting node.
    let mut pending: Vec<HashMap<u64, (usize, u64, u64, bool)>> =
        (0..nodes).map(|_| HashMap::new()).collect();
    let mut hist = LatencyHistogram::new();
    let mut ops = 0u64;
    let mut payload_bytes = 0u64;
    let mut errors = 0u64;
    let mut classes: Vec<KvClassOutcome> = (0..dir.classes())
        .map(|c| KvClassOutcome {
            bytes: dir.class_bytes(c),
            keys: 0,
            gets: 0,
            puts: 0,
            get_hist: LatencyHistogram::new(),
            put_hist: LatencyHistogram::new(),
        })
        .collect();
    for key in 0..dir.keys() {
        classes[dir.class_of(dir.lookup(key).len)].keys += 1;
    }
    let (mut gets, mut puts, mut corrupt) = (0u64, 0u64, 0u64);
    let (mut get_lines, mut get_bytes, mut put_bytes) = (0u64, 0u64, 0u64);

    loop {
        let now_ps = backend.now().as_ps();
        // 1. Materialize every arrival that is due, in tenant order.
        for (idx, t) in tenants.iter_mut().enumerate() {
            while t.arrivals.peek_ps() <= now_ps {
                let Some(at) = t.arrivals.next_arrival(&mut t.rng, horizon_ps) else {
                    break;
                };
                let krng = &mut kv_rngs[idx];
                let is_get = krng.chance(kv.get_fraction);
                let key = match last_key[idx] {
                    Some(k) if is_get && krng.chance(kv.repeat_prob) => k,
                    _ => key_sampler.sample(krng) as u64,
                };
                last_key[idx] = Some(key);
                let p = dir.lookup(key);
                let dst = NodeId(p.node as u16);
                let req = if is_get {
                    RemoteRequest::read(dst, p.offset, p.len)
                } else {
                    // A PUT refill pushes the value's full deterministic
                    // image, so readers can never observe a torn value.
                    let mut payload = vec![0u8; p.len as usize];
                    sonuma_apps::fill_value(key, &mut payload);
                    RemoteRequest::write(dst, p.offset, payload)
                };
                t.backlog.push_back((at, req));
                t.offered += 1;
            }
        }
        // 2. Post as much backlog as the queues accept, in tenant order.
        let mut posted_any = false;
        for (idx, t) in tenants.iter_mut().enumerate() {
            while let Some((at, req)) = t.backlog.front() {
                let is_get = req.op == sonuma_core::RemoteOp::Read;
                match backend.post_on(NodeId(t.home as u16), t.channel, req.clone()) {
                    Ok(token) => {
                        pending[t.home].insert(token, (idx, *at, req.len, is_get));
                        t.backlog.pop_front();
                        posted_any = true;
                    }
                    Err(sonuma_core::BackendError::Backpressure) => break,
                    Err(e) => panic!("scenario {} kv post failed: {e}", spec.name),
                }
            }
        }
        // 3. Make progress and account completions.
        let more = backend.advance();
        let now = backend.now();
        for (n, node_pending) in pending.iter_mut().enumerate() {
            for c in backend.poll(NodeId(n as u16)) {
                let (idx, at, len, is_get) = node_pending
                    .remove(&c.token)
                    .expect("completion for unknown token");
                let lat = now.saturating_sub(SimTime::from_ps(at));
                let t = &mut tenants[idx];
                t.completed += 1;
                ops += 1;
                if c.status.is_ok() {
                    t.hist.record(lat);
                    hist.record(lat);
                    payload_bytes += len;
                    let class = &mut classes[dir.class_of(len)];
                    if is_get {
                        gets += 1;
                        get_lines += len.div_ceil(64);
                        get_bytes += len;
                        class.gets += 1;
                        class.get_hist.record(lat);
                        // The payload carries the key in its header;
                        // verify the whole image byte-for-byte.
                        let key = u64::from_le_bytes(
                            c.data.get(..8).map_or([0u8; 8], |h| h.try_into().unwrap()),
                        );
                        if !sonuma_apps::verify_value(key, &c.data) {
                            corrupt += 1;
                        }
                    } else {
                        puts += 1;
                        put_bytes += len;
                        class.puts += 1;
                        class.put_hist.record(lat);
                    }
                    if let Some(flow) = flow.as_deref_mut() {
                        flow.record(now, idx as u32, lat);
                    }
                } else {
                    errors += 1;
                    t.errors += 1;
                }
            }
        }
        // 4. Terminate, or jump the idle clock to the next arrival.
        let backlogged = tenants.iter().any(|t| !t.backlog.is_empty());
        let inflight: usize = pending.iter().map(HashMap::len).sum();
        if !more && !posted_any && !backlogged && inflight == 0 {
            let next = tenants
                .iter()
                .map(|t| t.arrivals.peek_ps())
                .filter(|&p| p <= horizon_ps)
                .min();
            match next {
                Some(p) => backend.advance_clock_to(SimTime::from_ps(p)),
                None => break,
            }
        }
    }

    let sim_time = backend.now();
    let wall_secs = started.elapsed().as_secs_f64();
    let events = backend.events_processed();
    let offered_ops = tenants.iter().map(|t| t.offered).sum();
    let outcomes = tenants
        .into_iter()
        .enumerate()
        .map(|(t, d)| TenantOutcome {
            tenant: t as u32,
            node: d.home as u16,
            class: d.class,
            weight: d.weight,
            offered: d.offered,
            ops: d.completed,
            errors: d.errors,
            hist: d.hist,
        })
        .collect();
    BackendRun {
        backend: backend.label().to_string(),
        ops,
        offered_ops,
        payload_bytes,
        errors,
        sim_time,
        ops_per_sec: sonuma_sim::stats::ops_per_sec(ops, sim_time),
        gbps: sonuma_sim::stats::gbps(payload_bytes, sim_time),
        p50: hist.percentile(0.50),
        p99: hist.percentile(0.99),
        p999: hist.percentile(0.999),
        mean: hist.mean(),
        events,
        wall_secs,
        wall_events_per_sec: if wall_secs > 0.0 {
            events as f64 / wall_secs
        } else {
            0.0
        },
        wall_packets_per_sec: 0.0,
        wall_construct_secs: 0.0,
        threads: 1,
        shards: 1,
        epochs: 0,
        shard_events: Vec::new(),
        cut_links: 0,
        lookahead_bounds: None,
        pair_bound_violations: 0,
        resident_bytes: 0,
        speculation: None,
        compare_serial: None,
        pipeline_total: None,
        per_node: Vec::new(),
        tenants: outcomes,
        fabric: None,
        ok_bins_1us: Vec::new(),
        faults: None,
        trace: None,
        kv: Some(KvOutcome {
            keys: dir.keys(),
            gets,
            puts,
            corrupt,
            get_lines,
            get_bytes,
            put_bytes,
            classes,
        }),
    }
}

/// How many times each (spec, backend) pair is driven for wall-clock
/// timing. The simulated metrics come from the first drive (they are
/// identical across repetitions by construction); the reported
/// `wall_events_per_sec` is the best of the repetitions, the standard
/// antidote to scheduler noise in a CI-gated throughput number.
pub const TIMING_REPS: u32 = 3;

/// Executes one spec over every backend it requests.
///
/// # Panics
///
/// Panics if the spec fails [`ScenarioSpec::validate`] or a post is
/// rejected for a non-backpressure reason (both indicate harness bugs —
/// specs are validated at load time).
pub fn run_spec(spec: &ScenarioSpec) -> ScenarioResult {
    run_spec_with_reps(spec, TIMING_REPS)
}

/// Executes one spec with a single drive per backend — no timing
/// repetitions, so wall figures are first-drive values and a traced
/// run's `wall_overhead_secs` stays 0. This is what trace consumers
/// (the determinism test, figure generation) want: the simulated
/// metrics and trace bytes are identical to [`run_spec`]'s, without
/// paying for re-timed drives.
pub fn run_spec_once(spec: &ScenarioSpec) -> ScenarioResult {
    run_spec_with_reps(spec, 1)
}

fn run_spec_with_reps(spec: &ScenarioSpec, reps: u32) -> ScenarioResult {
    spec.validate().expect("spec validated at load time");
    let trace_spec = spec.trace.as_ref().filter(|t| !t.is_empty());
    let drive_one = |instance: &mut BackendInstance,
                     flow: Option<&mut sonuma_trace::TenantFlow>| {
        if spec.kv.as_ref().is_some_and(|kv| !kv.is_empty()) {
            drive_kv(spec, instance.as_dyn(), flow)
        } else if spec.tenancy.is_some() {
            drive_open_loop(spec, instance.as_dyn(), flow)
        } else {
            drive(spec, instance.as_dyn())
        }
    };
    let mut runs = Vec::new();
    for kind in spec.backend.kinds() {
        let built_at = std::time::Instant::now();
        let mut instance = BackendInstance::build(spec, kind);
        let mut construct_secs = built_at.elapsed().as_secs_f64();
        // Only the soNUMA machine carries a flight recorder; the modeled
        // baselines have no fabric or pipelines to sample.
        let traced = trace_spec.filter(|_| kind == BackendKind::Sonuma);
        if let (Some(t), BackendInstance::Sonuma(b)) = (traced, &mut instance) {
            b.arm_trace(&t.config());
        }
        let mut flow = traced
            .filter(|_| spec.tenancy.is_some())
            .map(|t| sonuma_trace::TenantFlow::new(us_to_sim(t.interval_us)));
        let mut run = drive_one(&mut instance, flow.as_mut());
        run.threads = spec.threads;
        if let (Some(t), BackendInstance::Sonuma(b)) = (traced, &instance) {
            let meta = sonuma_trace::TraceMeta {
                scenario: spec.name.clone(),
                backend: run.backend.clone(),
                nodes: spec.nodes as u64,
                interval_ps: us_to_sim(t.interval_us).as_ps(),
            };
            let recorder = b.trace();
            run.trace = Some(TraceOutcome {
                interval_us: t.interval_us,
                summary: recorder.map(|r| r.summary()).unwrap_or_default(),
                tenant_samples: flow.as_ref().map_or(0, |f| f.sample_count()),
                text: sonuma_trace::render_jsonl(&meta, recorder, flow.as_ref()),
                wall_overhead_secs: 0.0,
            });
        }
        if let BackendInstance::Sonuma(b) = &instance {
            run.shards = b.num_shards();
            run.epochs = b.epochs();
            run.shard_events = b.shard_events();
            run.cut_links = b.cut_links();
            run.lookahead_bounds = Some(b.lookahead_bounds());
            run.pair_bound_violations = b.pair_bound_violations();
            run.resident_bytes = b.resident_bytes();
            if b.speculation_depth() > 0 {
                run.speculation = Some(b.speculation());
            }
            run.per_node = (0..spec.nodes)
                .map(|n| b.pipeline_stats(NodeId(n as u16)))
                .collect();
            // Fold the cluster total from the per-node snapshots already
            // taken: one O(N) pass, no re-snapshotting per counter.
            let mut total = PipelineStats::default();
            for stats in &run.per_node {
                total.merge_from(stats);
            }
            run.pipeline_total = Some(total);
            let fabric = b.fabric();
            let links = fabric.link_stats();
            let mut hot: Vec<LinkStats> = links.clone();
            hot.sort_by_key(|l| (std::cmp::Reverse(l.bytes), l.src, l.dst));
            hot.truncate(MAX_REPORTED_LINKS);
            run.fabric = Some(FabricSummary {
                bytes: fabric.bytes_sent(),
                packets: fabric.packets_sent(),
                credit_stalls: fabric.credit_stalls(),
                lane_packets: fabric.lane_packets(),
                links_observed: links.len(),
                hot_links: hot,
            });
            if let Some(plan) = &b.config().fabric.faults {
                let fstats = fabric.fault_stats();
                let onset_us = spec.faults.as_ref().and_then(FaultSpec::onset_us);
                let (prefault, recovery_us, recovered) =
                    recovery_metrics(&run.ok_bins_1us, onset_us);
                let ok_ops = run.ops - run.errors;
                let denom = run.offered_ops.max(run.ops).max(1);
                run.faults = Some(FaultOutcome {
                    links_degraded: plan.links.iter().filter(|l| l.kill_at.is_none()).count(),
                    links_killed: plan.links.iter().filter(|l| l.kill_at.is_some()).count(),
                    nodes_crashed: plan.nodes.len(),
                    dropped: fstats.dropped,
                    corrupted: fstats.corrupted,
                    rerouted: fstats.rerouted,
                    unreachable: fstats.unreachable,
                    crashes: b.total_crashes(),
                    crash_drops: b.total_crash_drops(),
                    rgp_timeouts: total.rgp_timeouts,
                    rgp_retransmits: total.rgp_retransmits,
                    rrpp_corrupt_drops: total.rrpp_corrupt_drops,
                    aborted: run.errors,
                    goodput_fraction: ok_ops as f64 / denom as f64,
                    onset_us,
                    prefault_ops_per_us: prefault,
                    recovery_us,
                    recovered,
                    gold_p99_ns: run
                        .class_histogram(SloClass::Gold)
                        .map(|h| h.percentile(0.99).as_ns_f64()),
                    bronze_p99_ns: run
                        .class_histogram(SloClass::Bronze)
                        .map(|h| h.percentile(0.99).as_ns_f64()),
                });
            }
        }
        // The measured instance is fully snapshotted; release it before
        // the re-timed builds so only one machine is ever resident.
        drop(instance);
        // The repetitions run untraced (never armed, no tenant sampler):
        // the reported wall figures must describe the untraced hot path,
        // and the first drive's wall time minus the best untraced one is
        // the recorder's measured overhead. With tracing on and reps to
        // come, the traced first-drive wall figures are discarded.
        let traced_wall = run.trace.as_ref().map(|_| run.wall_secs);
        if traced_wall.is_some() && reps > 1 {
            run.wall_secs = 0.0;
            run.wall_events_per_sec = 0.0;
        }
        for _ in 1..reps {
            let built_at = std::time::Instant::now();
            let mut retimed = BackendInstance::build(spec, kind);
            construct_secs = construct_secs.min(built_at.elapsed().as_secs_f64());
            let rep = drive_one(&mut retimed, None);
            debug_assert_eq!(rep.events, run.events, "repetitions must be identical");
            if rep.wall_events_per_sec > run.wall_events_per_sec {
                run.wall_events_per_sec = rep.wall_events_per_sec;
                run.wall_secs = rep.wall_secs;
            }
        }
        run.wall_construct_secs = construct_secs;
        if let (Some(tw), Some(trace)) = (traced_wall, run.trace.as_mut()) {
            if reps > 1 {
                trace.wall_overhead_secs = (tw - run.wall_secs).max(0.0);
            }
        }
        if let Some(fabric) = &run.fabric {
            if run.wall_secs > 0.0 {
                run.wall_packets_per_sec = fabric.packets as f64 / run.wall_secs;
            }
        }
        runs.push(run);
    }
    ScenarioResult {
        spec: spec.clone(),
        runs,
    }
}

/// Executes a list of specs in order.
pub fn run_specs(specs: &[ScenarioSpec]) -> Vec<ScenarioResult> {
    specs.iter().map(run_spec).collect()
}

/// Executes `spec` twice — at `threads = 1` with speculation off and at
/// the spec's own thread count and `speculate_epochs` (threads forced to
/// 4 when the spec says 1) — and attaches the serial run's wall time,
/// the wall ratio, and the serial epoch count to each backend run (the
/// `--compare-threads` mode).
///
/// # Panics
///
/// Panics if the two runs disagree on any simulated metric: that would
/// be a determinism break, which the bench must never paper over.
pub fn run_spec_compare_threads(spec: &ScenarioSpec) -> ScenarioResult {
    let mut serial_spec = spec.clone();
    serial_spec.threads = 1;
    serial_spec.speculate_epochs = 0;
    let mut sharded_spec = spec.clone();
    if sharded_spec.threads == 1 {
        sharded_spec.threads = 4;
    }
    let serial = run_spec(&serial_spec);
    let mut result = run_spec(&sharded_spec);
    for (run, srun) in result.runs.iter_mut().zip(&serial.runs) {
        assert_eq!(
            (run.events, run.ops, run.sim_time),
            (srun.events, srun.ops, srun.sim_time),
            "{}: serial and sharded runs diverged",
            spec.name
        );
        run.compare_serial = Some(CompareSerial {
            wall_secs: srun.wall_secs,
            wall_ratio: if run.wall_secs > 0.0 {
                srun.wall_secs / run.wall_secs
            } else {
                0.0
            },
            epochs: srun.epochs,
        });
    }
    result
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

fn stats_json(stats: &PipelineStats) -> Json {
    Json::Obj(
        stats
            .rows()
            .iter()
            .map(|&(name, value)| (name.to_string(), Json::Num(value as f64)))
            .collect(),
    )
}

/// Latency members of a tenant/class histogram, in report order.
fn latency_json(hist: &LatencyHistogram) -> Vec<(String, Json)> {
    vec![
        (
            "lat_p50_ns".to_string(),
            Json::Num(hist.percentile(0.50).as_ns_f64()),
        ),
        (
            "lat_p99_ns".to_string(),
            Json::Num(hist.percentile(0.99).as_ns_f64()),
        ),
        (
            "lat_p999_ns".to_string(),
            Json::Num(hist.percentile(0.999).as_ns_f64()),
        ),
        (
            "lat_mean_ns".to_string(),
            Json::Num(hist.mean().as_ns_f64()),
        ),
    ]
}

/// The `per_tenant` report section: achieved-vs-offered fairness (Jain's
/// index over each tenant's delivered fraction), per-SLO-class latency
/// aggregates, and the full per-tenant table.
fn per_tenant_json(run: &BackendRun) -> Json {
    let jain = run.jain_fairness();
    let mut classes = Vec::new();
    for class in [SloClass::Gold, SloClass::Silver, SloClass::Bronze] {
        let Some(hist) = run.class_histogram(class) else {
            continue;
        };
        let (mut count, mut offered, mut ops) = (0u64, 0u64, 0u64);
        for t in run.tenants.iter().filter(|t| t.class == class) {
            count += 1;
            offered += t.offered;
            ops += t.ops;
        }
        let mut members = vec![
            ("class".to_string(), Json::Str(class.as_str().into())),
            ("tenants".to_string(), Json::Num(count as f64)),
            ("offered_ops".to_string(), Json::Num(offered as f64)),
            ("ops".to_string(), Json::Num(ops as f64)),
        ];
        members.extend(latency_json(&hist));
        classes.push(Json::Obj(members));
    }
    let tenants = run
        .tenants
        .iter()
        .take(MAX_REPORTED_TENANTS)
        .map(|t| {
            let mut members = vec![
                ("tenant".to_string(), Json::Num(t.tenant as f64)),
                ("node".to_string(), Json::Num(t.node as f64)),
                ("class".to_string(), Json::Str(t.class.as_str().into())),
                ("weight".to_string(), Json::Num(t.weight as f64)),
                ("offered_ops".to_string(), Json::Num(t.offered as f64)),
                ("ops".to_string(), Json::Num(t.ops as f64)),
                ("errors".to_string(), Json::Num(t.errors as f64)),
            ];
            members.extend(latency_json(&t.hist));
            Json::Obj(members)
        })
        .collect();
    let shown = run.tenants.len().min(MAX_REPORTED_TENANTS);
    Json::Obj(vec![
        ("tenants".to_string(), Json::Num(run.tenants.len() as f64)),
        ("jain_fairness".to_string(), Json::Num(jain)),
        ("classes".to_string(), Json::Arr(classes)),
        ("detail_shown".to_string(), Json::Num(shown as f64)),
        (
            "detail_truncated".to_string(),
            Json::Bool(run.tenants.len() > shown),
        ),
        ("detail".to_string(), Json::Arr(tenants)),
    ])
}

fn fabric_json(fabric: &FabricSummary) -> Json {
    Json::Obj(vec![
        ("bytes".to_string(), Json::Num(fabric.bytes as f64)),
        ("packets".to_string(), Json::Num(fabric.packets as f64)),
        (
            "credit_stalls".to_string(),
            Json::Num(fabric.credit_stalls as f64),
        ),
        (
            "lane_packets".to_string(),
            Json::Arr(
                fabric
                    .lane_packets
                    .iter()
                    .map(|&p| Json::Num(p as f64))
                    .collect(),
            ),
        ),
        (
            "links_observed".to_string(),
            Json::Num(fabric.links_observed as f64),
        ),
        (
            "hot_links".to_string(),
            Json::Arr(
                fabric
                    .hot_links
                    .iter()
                    .map(|l| {
                        Json::Obj(vec![
                            ("src".to_string(), Json::Num(l.src.0 as f64)),
                            ("dst".to_string(), Json::Num(l.dst.0 as f64)),
                            ("bytes".to_string(), Json::Num(l.bytes as f64)),
                            ("packets".to_string(), Json::Num(l.packets as f64)),
                            (
                                "credit_stalls".to_string(),
                                Json::Num(l.credit_stalls as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// How many 1 µs goodput bins a report includes (fault runs only). The
/// recovery metrics always cover every bin; only the raw dump is capped.
pub const MAX_REPORTED_BINS: usize = 256;

fn fault_json(f: &FaultOutcome, bins: &[u64]) -> Json {
    let mut members = vec![
        (
            "links_degraded".to_string(),
            Json::Num(f.links_degraded as f64),
        ),
        ("links_killed".to_string(), Json::Num(f.links_killed as f64)),
        (
            "nodes_crashed".to_string(),
            Json::Num(f.nodes_crashed as f64),
        ),
        ("dropped".to_string(), Json::Num(f.dropped as f64)),
        ("corrupted".to_string(), Json::Num(f.corrupted as f64)),
        ("rerouted".to_string(), Json::Num(f.rerouted as f64)),
        ("unreachable".to_string(), Json::Num(f.unreachable as f64)),
        ("crashes".to_string(), Json::Num(f.crashes as f64)),
        ("crash_drops".to_string(), Json::Num(f.crash_drops as f64)),
        ("rgp_timeouts".to_string(), Json::Num(f.rgp_timeouts as f64)),
        (
            "rgp_retransmits".to_string(),
            Json::Num(f.rgp_retransmits as f64),
        ),
        (
            "rrpp_corrupt_drops".to_string(),
            Json::Num(f.rrpp_corrupt_drops as f64),
        ),
        ("aborted".to_string(), Json::Num(f.aborted as f64)),
        (
            "goodput_fraction".to_string(),
            Json::Num(f.goodput_fraction),
        ),
        (
            "prefault_ops_per_us".to_string(),
            Json::Num(f.prefault_ops_per_us),
        ),
        ("recovered".to_string(), Json::Bool(f.recovered)),
    ];
    if let Some(onset) = f.onset_us {
        members.push(("onset_us".to_string(), Json::Num(onset)));
    }
    if let Some(rec) = f.recovery_us {
        members.push(("recovery_us".to_string(), Json::Num(rec)));
    }
    if let Some(p99) = f.gold_p99_ns {
        members.push(("gold_p99_ns".to_string(), Json::Num(p99)));
    }
    if let Some(p99) = f.bronze_p99_ns {
        members.push(("bronze_p99_ns".to_string(), Json::Num(p99)));
    }
    members.push((
        "ok_bins_1us".to_string(),
        Json::Arr(
            bins.iter()
                .take(MAX_REPORTED_BINS)
                .map(|&b| Json::Num(b as f64))
                .collect(),
        ),
    ));
    Json::Obj(members)
}

/// The `kv` report section: directory-plane totals, verification
/// status, the per-value-size-class GET/PUT crossover rows, and the
/// per-SLO-class achieved-vs-offered rows.
fn kv_json(run: &BackendRun, kv: &KvOutcome) -> Json {
    let classes = kv
        .classes
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("bytes".to_string(), Json::Num(c.bytes as f64)),
                ("lines".to_string(), Json::Num(c.bytes.div_ceil(64) as f64)),
                ("keys".to_string(), Json::Num(c.keys as f64)),
                ("gets".to_string(), Json::Num(c.gets as f64)),
                ("puts".to_string(), Json::Num(c.puts as f64)),
                (
                    "get_p50_ns".to_string(),
                    Json::Num(c.get_hist.percentile(0.50).as_ns_f64()),
                ),
                (
                    "get_p99_ns".to_string(),
                    Json::Num(c.get_hist.percentile(0.99).as_ns_f64()),
                ),
                (
                    "get_mean_ns".to_string(),
                    Json::Num(c.get_hist.mean().as_ns_f64()),
                ),
                (
                    "put_p50_ns".to_string(),
                    Json::Num(c.put_hist.percentile(0.50).as_ns_f64()),
                ),
                (
                    "put_p99_ns".to_string(),
                    Json::Num(c.put_hist.percentile(0.99).as_ns_f64()),
                ),
                (
                    "put_mean_ns".to_string(),
                    Json::Num(c.put_hist.mean().as_ns_f64()),
                ),
            ])
        })
        .collect();
    // Per-SLO-class rows: the tenant-visible (GET+PUT) tail and the
    // achieved-vs-offered throughput the gold/silver/bronze gates read.
    let mut slo = Vec::new();
    for class in [SloClass::Gold, SloClass::Silver, SloClass::Bronze] {
        let Some(hist) = run.class_histogram(class) else {
            continue;
        };
        let (mut count, mut offered, mut ops) = (0u64, 0u64, 0u64);
        for t in run.tenants.iter().filter(|t| t.class == class) {
            count += 1;
            offered += t.offered;
            ops += t.ops;
        }
        let mut members = vec![
            ("class".to_string(), Json::Str(class.as_str().into())),
            ("tenants".to_string(), Json::Num(count as f64)),
            ("offered_ops".to_string(), Json::Num(offered as f64)),
            ("ops".to_string(), Json::Num(ops as f64)),
            (
                "achieved_fraction".to_string(),
                Json::Num(if offered > 0 {
                    ops as f64 / offered as f64
                } else {
                    0.0
                }),
            ),
        ];
        members.extend(latency_json(&hist));
        slo.push(Json::Obj(members));
    }
    Json::Obj(vec![
        ("keys".to_string(), Json::Num(kv.keys as f64)),
        ("gets".to_string(), Json::Num(kv.gets as f64)),
        ("puts".to_string(), Json::Num(kv.puts as f64)),
        ("corrupt".to_string(), Json::Num(kv.corrupt as f64)),
        ("get_lines".to_string(), Json::Num(kv.get_lines as f64)),
        ("get_bytes".to_string(), Json::Num(kv.get_bytes as f64)),
        ("put_bytes".to_string(), Json::Num(kv.put_bytes as f64)),
        (
            "achieved_fraction".to_string(),
            Json::Num(if run.offered_ops > 0 {
                (run.ops - run.errors) as f64 / run.offered_ops as f64
            } else {
                0.0
            }),
        ),
        ("classes".to_string(), Json::Arr(classes)),
        ("slo".to_string(), Json::Arr(slo)),
    ])
}

fn run_json(run: &BackendRun) -> Json {
    let mut members = vec![
        ("backend".to_string(), Json::Str(run.backend.clone())),
        ("ops".to_string(), Json::Num(run.ops as f64)),
        ("offered_ops".to_string(), Json::Num(run.offered_ops as f64)),
        (
            "payload_bytes".to_string(),
            Json::Num(run.payload_bytes as f64),
        ),
        ("errors".to_string(), Json::Num(run.errors as f64)),
        ("sim_us".to_string(), Json::Num(run.sim_time.as_us_f64())),
        ("ops_per_sec".to_string(), Json::Num(run.ops_per_sec)),
        ("gbps".to_string(), Json::Num(run.gbps)),
        ("lat_p50_ns".to_string(), Json::Num(run.p50.as_ns_f64())),
        ("lat_p99_ns".to_string(), Json::Num(run.p99.as_ns_f64())),
        ("lat_p999_ns".to_string(), Json::Num(run.p999.as_ns_f64())),
        ("lat_mean_ns".to_string(), Json::Num(run.mean.as_ns_f64())),
        ("events".to_string(), Json::Num(run.events as f64)),
        ("wall_secs".to_string(), Json::Num(run.wall_secs)),
        (
            "wall_events_per_sec".to_string(),
            Json::Num(run.wall_events_per_sec),
        ),
        (
            "wall_packets_per_sec".to_string(),
            Json::Num(run.wall_packets_per_sec),
        ),
        (
            "wall_construct_secs".to_string(),
            Json::Num(run.wall_construct_secs),
        ),
    ];
    // Shard metadata: everything here either depends on the partition
    // (shard_events) or on the host (wall rates), so the whole section is
    // stripped by `equivalence_diff` alongside the wall_* fields.
    let mut sharding = vec![
        ("threads".to_string(), Json::Num(run.threads as f64)),
        ("shards".to_string(), Json::Num(run.shards as f64)),
        ("epochs".to_string(), Json::Num(run.epochs as f64)),
        ("cut_links".to_string(), Json::Num(run.cut_links as f64)),
        (
            "pair_bound_violations".to_string(),
            Json::Num(run.pair_bound_violations as f64),
        ),
        (
            "resident_bytes".to_string(),
            Json::Num(run.resident_bytes as f64),
        ),
    ];
    if let Some((lo, hi)) = run.lookahead_bounds {
        sharding.push(("lookahead_min_ns".to_string(), Json::Num(lo.as_ns_f64())));
        sharding.push(("lookahead_max_ns".to_string(), Json::Num(hi.as_ns_f64())));
    }
    if let Some((committed, rolled_back)) = run.speculation {
        let settled = committed + rolled_back;
        sharding.push((
            "speculation".to_string(),
            Json::Obj(vec![
                ("committed".to_string(), Json::Num(committed as f64)),
                ("rolled_back".to_string(), Json::Num(rolled_back as f64)),
                (
                    "rollback_ratio".to_string(),
                    Json::Num(if settled > 0 {
                        rolled_back as f64 / settled as f64
                    } else {
                        0.0
                    }),
                ),
            ]),
        ));
    }
    if let Some(cmp) = &run.compare_serial {
        sharding.push((
            "compare_serial".to_string(),
            Json::Obj(vec![
                ("wall_secs".to_string(), Json::Num(cmp.wall_secs)),
                ("wall_ratio".to_string(), Json::Num(cmp.wall_ratio)),
                ("epochs".to_string(), Json::Num(cmp.epochs as f64)),
            ]),
        ));
    }
    if !run.shard_events.is_empty() {
        sharding.push((
            "shard_events".to_string(),
            Json::Arr(
                run.shard_events
                    .iter()
                    .map(|&e| Json::Num(e as f64))
                    .collect(),
            ),
        ));
        if run.wall_secs > 0.0 {
            sharding.push((
                "wall_shard_events_per_sec".to_string(),
                Json::Arr(
                    run.shard_events
                        .iter()
                        .map(|&e| Json::Num(e as f64 / run.wall_secs))
                        .collect(),
                ),
            ));
        }
    }
    members.push(("sharding".to_string(), Json::Obj(sharding)));
    if !run.tenants.is_empty() {
        members.push(("per_tenant".to_string(), per_tenant_json(run)));
    }
    if let Some(fabric) = &run.fabric {
        members.push(("fabric".to_string(), fabric_json(fabric)));
    }
    if let Some(f) = &run.faults {
        members.push(("faults".to_string(), fault_json(f, &run.ok_bins_1us)));
    }
    if let Some(kv) = &run.kv {
        members.push(("kv".to_string(), kv_json(run, kv)));
    }
    if let Some(t) = &run.trace {
        let s = t.summary;
        members.push((
            "trace".to_string(),
            Json::Obj(vec![
                ("interval_us".to_string(), Json::Num(t.interval_us)),
                ("ticks".to_string(), Json::Num(s.ticks as f64)),
                ("link_samples".to_string(), Json::Num(s.link_samples as f64)),
                ("link_dropped".to_string(), Json::Num(s.link_dropped as f64)),
                ("node_samples".to_string(), Json::Num(s.node_samples as f64)),
                ("node_dropped".to_string(), Json::Num(s.node_dropped as f64)),
                ("fault_events".to_string(), Json::Num(s.fault_events as f64)),
                (
                    "fault_dropped".to_string(),
                    Json::Num(s.fault_dropped as f64),
                ),
                (
                    "tenant_samples".to_string(),
                    Json::Num(t.tenant_samples as f64),
                ),
                (
                    "wall_overhead_secs".to_string(),
                    Json::Num(t.wall_overhead_secs),
                ),
            ]),
        ));
    }
    if let Some(total) = &run.pipeline_total {
        members.push(("pipeline_total".to_string(), stats_json(total)));
        members.push((
            "per_node".to_string(),
            Json::Arr(run.per_node.iter().map(stats_json).collect()),
        ));
    }
    Json::Obj(members)
}

/// Measures this machine's single-core event throughput: the legacy
/// boxed-closure engine draining a fixed pseudorandom 100k-event workload
/// (best of three). Reports store this next to their absolute events/sec
/// so [`check_baseline`] can compare runs from different machines by the
/// *ratio* to the host's own calibration instead of raw wall-clock rates.
pub fn calibrate() -> f64 {
    const N: u64 = 100_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let started = Instant::now();
        let mut engine: sonuma_sim::Engine<u64> = sonuma_sim::Engine::new();
        let mut acc = 0u64;
        let mut seed = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..N {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let salt = seed;
            engine.schedule_at(
                SimTime::from_ps(seed % 5_000_000_000),
                move |w: &mut u64, _| {
                    *w = w.wrapping_add(salt);
                },
            );
        }
        engine.run(&mut acc);
        assert_ne!(acc, 0);
        best = best.max(N as f64 / started.elapsed().as_secs_f64());
    }
    best
}

/// Builds the versioned report document from executed scenarios.
pub fn report(results: &[ScenarioResult]) -> Json {
    report_inner(results, None)
}

/// As [`report`], embedding a host calibration (see [`calibrate`]) so the
/// report can gate — and be gated — across machines.
pub fn report_calibrated(results: &[ScenarioResult], boxed_events_per_sec: f64) -> Json {
    report_inner(results, Some(boxed_events_per_sec))
}

fn report_inner(results: &[ScenarioResult], calibration: Option<f64>) -> Json {
    let mut members = vec![("schema".to_string(), Json::Str(REPORT_SCHEMA.into()))];
    if let Some(eps) = calibration {
        members.push((
            "calibration".to_string(),
            Json::Obj(vec![(
                "wall_boxed_events_per_sec".to_string(),
                Json::Num(eps),
            )]),
        ));
    }
    members.push((
        "scenarios".to_string(),
        Json::Arr(
            results
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("spec".into(), r.spec.to_json()),
                        (
                            "runs".into(),
                            Json::Arr(r.runs.iter().map(run_json).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(members)
}

/// Checks that a parsed document is a well-formed scenario report.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    match doc.str_of("schema") {
        Some(REPORT_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema {other:?}")),
        None => return Err("missing schema tag".to_string()),
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("missing scenarios array")?;
    if scenarios.is_empty() {
        return Err("empty scenarios array".to_string());
    }
    for (i, sc) in scenarios.iter().enumerate() {
        let spec = sc
            .get("spec")
            .ok_or(format!("scenario {i}: missing spec"))?;
        let name = spec
            .str_of("name")
            .ok_or(format!("scenario {i}: spec has no name"))?;
        spec.u64_of("nodes")
            .filter(|&n| n >= 2)
            .ok_or(format!("scenario {name}: bad nodes"))?;
        spec.u64_of("seed")
            .ok_or(format!("scenario {name}: no seed"))?;
        let runs = sc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or(format!("scenario {name}: missing runs"))?;
        if runs.is_empty() {
            return Err(format!("scenario {name}: no runs"));
        }
        for run in runs {
            let backend = run
                .str_of("backend")
                .ok_or(format!("scenario {name}: run without backend"))?;
            for key in [
                "ops",
                "offered_ops",
                "payload_bytes",
                "errors",
                "sim_us",
                "ops_per_sec",
                "gbps",
                "lat_p50_ns",
                "lat_p99_ns",
                "lat_p999_ns",
                "events",
                "wall_secs",
                "wall_events_per_sec",
                "wall_packets_per_sec",
                "wall_construct_secs",
            ] {
                run.f64_of(key)
                    .ok_or(format!("scenario {name}/{backend}: missing {key}"))?;
            }
            let sharding = run
                .get("sharding")
                .ok_or(format!("scenario {name}/{backend}: missing sharding"))?;
            for key in [
                "threads",
                "shards",
                "epochs",
                "cut_links",
                "pair_bound_violations",
                "resident_bytes",
            ] {
                sharding
                    .u64_of(key)
                    .ok_or(format!("scenario {name}/{backend}: sharding has no {key}"))?;
            }
            if let Some(sp) = sharding.get("speculation") {
                for key in ["committed", "rolled_back"] {
                    sp.u64_of(key).ok_or(format!(
                        "scenario {name}/{backend}: speculation has no {key}"
                    ))?;
                }
                let ratio = sp.f64_of("rollback_ratio").ok_or(format!(
                    "scenario {name}/{backend}: speculation has no rollback_ratio"
                ))?;
                if !(0.0..=1.0).contains(&ratio) {
                    return Err(format!(
                        "scenario {name}/{backend}: rollback_ratio {ratio} out of [0, 1]"
                    ));
                }
            }
            if let Some(fa) = run.get("faults") {
                let goodput = fa.f64_of("goodput_fraction").ok_or(format!(
                    "scenario {name}/{backend}: faults has no goodput_fraction"
                ))?;
                if !(0.0..=1.0).contains(&goodput) {
                    return Err(format!(
                        "scenario {name}/{backend}: goodput_fraction {goodput} out of [0, 1]"
                    ));
                }
                if !matches!(fa.get("recovered"), Some(Json::Bool(_))) {
                    return Err(format!(
                        "scenario {name}/{backend}: faults has no recovered flag"
                    ));
                }
            }
            if let Some(kv) = run.get("kv") {
                for key in ["keys", "gets", "puts", "corrupt", "get_lines", "get_bytes"] {
                    kv.u64_of(key)
                        .ok_or(format!("scenario {name}/{backend}: kv has no {key}"))?;
                }
                let achieved = kv.f64_of("achieved_fraction").ok_or(format!(
                    "scenario {name}/{backend}: kv has no achieved_fraction"
                ))?;
                if !(0.0..=1.0).contains(&achieved) {
                    return Err(format!(
                        "scenario {name}/{backend}: kv achieved_fraction {achieved} out of [0, 1]"
                    ));
                }
                let classes = kv
                    .get("classes")
                    .and_then(Json::as_arr)
                    .filter(|c| !c.is_empty())
                    .ok_or(format!("scenario {name}/{backend}: kv without classes"))?;
                for c in classes {
                    for key in ["bytes", "keys", "get_p99_ns", "put_p99_ns"] {
                        c.f64_of(key)
                            .ok_or(format!("scenario {name}/{backend}: kv class has no {key}"))?;
                    }
                }
                kv.get("slo")
                    .and_then(Json::as_arr)
                    .filter(|s| !s.is_empty())
                    .ok_or(format!("scenario {name}/{backend}: kv without slo rows"))?;
            }
            if let Some(tr) = run.get("trace") {
                for key in [
                    "ticks",
                    "link_samples",
                    "link_dropped",
                    "node_samples",
                    "node_dropped",
                    "fault_events",
                    "fault_dropped",
                    "tenant_samples",
                ] {
                    tr.u64_of(key)
                        .ok_or(format!("scenario {name}/{backend}: trace has no {key}"))?;
                }
                let overhead = tr.f64_of("wall_overhead_secs").ok_or(format!(
                    "scenario {name}/{backend}: trace has no wall_overhead_secs"
                ))?;
                if overhead < 0.0 {
                    return Err(format!(
                        "scenario {name}/{backend}: negative trace overhead {overhead}"
                    ));
                }
            }
            if let Some(pt) = run.get("per_tenant") {
                let jain = pt
                    .f64_of("jain_fairness")
                    .ok_or(format!("scenario {name}/{backend}: per_tenant has no jain"))?;
                if !(0.0..=1.0).contains(&jain) {
                    return Err(format!(
                        "scenario {name}/{backend}: jain_fairness {jain} out of [0, 1]"
                    ));
                }
                pt.get("detail")
                    .and_then(Json::as_arr)
                    .filter(|d| !d.is_empty())
                    .ok_or(format!(
                        "scenario {name}/{backend}: per_tenant without detail"
                    ))?;
            }
        }
    }
    Ok(())
}

/// Outcome of comparing a fresh report against a checked-in baseline.
#[derive(Debug, Default)]
pub struct BaselineCheck {
    /// `(scenario, backend)` pairs that regressed, with details.
    pub failures: Vec<String>,
    /// Informational lines (sim-metric drift, missing counterparts).
    pub notes: Vec<String>,
}

/// Pairs whose baseline executed fewer events than this are too short for
/// a meaningful wall-clock rate (sub-10 ms runs are scheduler noise); they
/// are excluded from per-pair gating but still count toward the aggregate.
pub const MIN_GATED_EVENTS: u64 = 100_000;

#[derive(Debug)]
struct RunRow {
    name: String,
    backend: String,
    eps: f64,
    pps: f64,
    sim_us: f64,
    events: f64,
    wall_secs: f64,
    construct_secs: f64,
}

fn run_rows(doc: &Json) -> Vec<RunRow> {
    let mut out = Vec::new();
    if let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) {
        for sc in scenarios {
            let name = sc
                .get("spec")
                .and_then(|s| s.str_of("name"))
                .unwrap_or("?")
                .to_string();
            if let Some(runs) = sc.get("runs").and_then(Json::as_arr) {
                for run in runs {
                    out.push(RunRow {
                        name: name.clone(),
                        backend: run.str_of("backend").unwrap_or("?").to_string(),
                        eps: run.f64_of("wall_events_per_sec").unwrap_or(0.0),
                        pps: run.f64_of("wall_packets_per_sec").unwrap_or(0.0),
                        sim_us: run.f64_of("sim_us").unwrap_or(0.0),
                        events: run.f64_of("events").unwrap_or(0.0),
                        wall_secs: run.f64_of("wall_secs").unwrap_or(0.0),
                        construct_secs: run.f64_of("wall_construct_secs").unwrap_or(0.0),
                    });
                }
            }
        }
    }
    out
}

/// The host calibration embedded in a report, if present and sane.
fn calibration_of(doc: &Json) -> Option<f64> {
    doc.get("calibration")
        .and_then(|c| c.f64_of("wall_boxed_events_per_sec"))
        .filter(|&x| x > 0.0)
}

/// Compares wall-clock events/sec of `current` against `baseline`.
///
/// When both reports embed a host calibration (see [`calibrate`]), rates
/// are compared *relative to each host's calibration*, so a baseline
/// recorded on one machine meaningfully gates a run on another; without
/// calibration the comparison falls back to absolute rates (noted).
///
/// Four gates, all with budget `max_regress` (e.g. `0.20`):
///
/// * per `(scenario, backend)` pair on events/sec, for pairs whose
///   baseline executed at least [`MIN_GATED_EVENTS`] events;
/// * per pair on `wall_packets_per_sec`, for fabric-backed pairs meeting
///   the same floor — the batching-invariant fabric hot-path gate;
/// * per pair on `wall_construct_secs` (lower is better), for pairs
///   whose baseline build took at least 50 ms — the parallel-world-
///   construction gate;
/// * the aggregate `Σ events / Σ wall_secs` across every matched pair,
///   which is the overall typed-engine throughput the tentpole protects.
///
/// Simulated-metric drift and current runs with no baseline counterpart
/// (i.e. not gated at all) are reported as notes, not failures — both
/// mean the baseline wants regenerating.
pub fn check_baseline(current: &Json, baseline: &Json, max_regress: f64) -> BaselineCheck {
    let mut check = BaselineCheck::default();
    // A stale baseline fails loudly with the fix, not with a cascade of
    // missing-field errors: the schema version must match the binary's.
    match baseline.str_of("schema") {
        Some(REPORT_SCHEMA) => {}
        other => {
            check.failures.push(format!(
                "baseline schema {} does not match this binary's {REPORT_SCHEMA:?}; \
                 regenerate it with `sonuma-bench baseline --regen`",
                other.map_or("<missing>".to_string(), |s| format!("{s:?}"))
            ));
            return check;
        }
    }
    let cur = run_rows(current);
    let base_rows = run_rows(baseline);
    // Normalization divisors: each host's own calibration, or 1.0 for the
    // absolute fallback when either side lacks one.
    let (cur_calib, base_calib) = match (calibration_of(current), calibration_of(baseline)) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            check.notes.push(
                "no calibration on one or both reports; comparing absolute \
                 events/sec (hardware differences count as regressions)"
                    .to_string(),
            );
            (1.0, 1.0)
        }
    };
    let (mut base_events, mut base_wall) = (0.0f64, 0.0f64);
    let (mut cur_events, mut cur_wall) = (0.0f64, 0.0f64);
    for base in &base_rows {
        let Some(row) = cur
            .iter()
            .find(|r| r.name == base.name && r.backend == base.backend)
        else {
            check.failures.push(format!(
                "{}/{}: present in baseline, missing in run",
                base.name, base.backend
            ));
            continue;
        };
        base_events += base.events;
        base_wall += base.wall_secs;
        cur_events += row.events;
        cur_wall += row.wall_secs;
        let base_rel = base.eps / base_calib;
        let cur_rel = row.eps / cur_calib;
        let floor = base_rel * (1.0 - max_regress);
        if base.events < MIN_GATED_EVENTS as f64 {
            check.notes.push(format!(
                "{}/{}: only {:.0} events in baseline, below the {} gating \
                 floor; counted in the aggregate only",
                base.name, base.backend, base.events, MIN_GATED_EVENTS
            ));
        } else {
            if cur_rel < floor {
                check.failures.push(format!(
                    "{}/{}: {:.3} x-calibration events/sec < {:.3} \
                     (baseline {:.3}, max regression {:.0}%)",
                    base.name,
                    base.backend,
                    cur_rel,
                    floor,
                    base_rel,
                    max_regress * 100.0
                ));
            }
            // Fabric-backed pairs additionally gate on packet rate. Only
            // the baseline side is checked for presence: a current run
            // whose packet rate collapsed to zero (fabric summary lost,
            // field dropped) must FAIL the gate, not silently skip it.
            if base.pps > 0.0 {
                let base_prel = base.pps / base_calib;
                let cur_prel = row.pps / cur_calib;
                let pfloor = base_prel * (1.0 - max_regress);
                if cur_prel < pfloor {
                    check.failures.push(format!(
                        "{}/{}: {:.3} x-calibration packets/sec < {:.3} \
                         (baseline {:.3}, max regression {:.0}%)",
                        base.name,
                        base.backend,
                        cur_prel,
                        pfloor,
                        base_prel,
                        max_regress * 100.0
                    ));
                }
            }
        }
        // Construction wall time gates independently of drive time (lower
        // is better; multiplying by the host's calibration makes the
        // figure cross-machine comparable, mirroring the rate gates).
        // Sub-50 ms baseline builds are scheduler noise and skip the gate.
        if base.construct_secs >= 0.05 {
            let base_cnorm = base.construct_secs * base_calib;
            let cur_cnorm = row.construct_secs * cur_calib;
            let ceiling = base_cnorm * (1.0 + max_regress);
            if cur_cnorm > ceiling {
                check.failures.push(format!(
                    "{}/{}: {:.3e} x-calibration construct time > {:.3e} \
                     (baseline {:.3e}, max regression {:.0}%)",
                    base.name,
                    base.backend,
                    cur_cnorm,
                    ceiling,
                    base_cnorm,
                    max_regress * 100.0
                ));
            }
        }
        if (row.sim_us - base.sim_us).abs() > base.sim_us * 1e-9 {
            check.notes.push(format!(
                "{}/{}: simulated time drifted ({:.3} us -> {:.3} us); \
                 regenerate bench/baseline.json if intended",
                base.name, base.backend, base.sim_us, row.sim_us
            ));
        }
    }
    // Runs with no baseline counterpart are not gated — surface that.
    for row in &cur {
        if !base_rows
            .iter()
            .any(|b| b.name == row.name && b.backend == row.backend)
        {
            check.notes.push(format!(
                "{}/{}: not in baseline, events/sec not gated; regenerate \
                 bench/baseline.json to cover it",
                row.name, row.backend
            ));
        }
    }
    if base_wall > 0.0 && cur_wall > 0.0 {
        let base_agg = base_events / base_wall / base_calib;
        let cur_agg = cur_events / cur_wall / cur_calib;
        let floor = base_agg * (1.0 - max_regress);
        if cur_agg < floor {
            check.failures.push(format!(
                "aggregate: {cur_agg:.3} x-calibration events/sec < {floor:.3} \
                 (baseline {base_agg:.3}, max regression {:.0}%)",
                max_regress * 100.0
            ));
        }
    }
    check
}

/// `(scenario, backend, faults-object)` triples of a report.
fn fault_rows(doc: &Json) -> Vec<(String, String, Json)> {
    let mut out = Vec::new();
    if let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) {
        for sc in scenarios {
            let name = sc
                .get("spec")
                .and_then(|s| s.str_of("name"))
                .unwrap_or("?")
                .to_string();
            if let Some(runs) = sc.get("runs").and_then(Json::as_arr) {
                for run in runs {
                    if let Some(fa) = run.get("faults") {
                        let backend = run.str_of("backend").unwrap_or("?").to_string();
                        out.push((name.clone(), backend, fa.clone()));
                    }
                }
            }
        }
    }
    out
}

/// Gates a fresh report's fault outcomes against a baseline's — the CI
/// `fault-matrix` lane's check. For every `(scenario, backend)` pair whose
/// baseline run carries a `faults` section:
///
/// * the current run must carry one too and report `recovered = true`
///   whenever the baseline recovered;
/// * recovery time may regress by at most 25 % (+1 µs of slack for bin
///   quantization);
/// * goodput under failure may drop by at most 0.02 absolute;
/// * where the baseline run kept gold p99 below bronze p99, the current
///   run must too — the isolation promise must hold *under* failure.
///
/// Pairs absent from the current report are [`check_baseline`]'s problem;
/// this check only compares fault physics where both sides ran.
pub fn check_fault_baseline(current: &Json, baseline: &Json) -> BaselineCheck {
    let mut check = BaselineCheck::default();
    let cur = fault_rows(current);
    for (name, backend, base) in fault_rows(baseline) {
        let Some((_, _, fa)) = cur.iter().find(|(n, b, _)| *n == name && *b == backend) else {
            // A current run that exists but lost its faults section means
            // injection was silently disabled — fail. A missing run is
            // already `check_baseline`'s failure; don't double-report.
            if run_rows(current)
                .iter()
                .any(|r| r.name == name && r.backend == backend)
            {
                check.failures.push(format!(
                    "{name}/{backend}: baseline has a faults section, current run does not"
                ));
            }
            continue;
        };
        let base_recovered = matches!(base.get("recovered"), Some(Json::Bool(true)));
        let cur_recovered = matches!(fa.get("recovered"), Some(Json::Bool(true)));
        if base_recovered && !cur_recovered {
            check.failures.push(format!(
                "{name}/{backend}: goodput no longer recovers to 90% of the pre-fault rate"
            ));
        }
        if let (Some(base_rec), Some(cur_rec)) =
            (base.f64_of("recovery_us"), fa.f64_of("recovery_us"))
        {
            let ceil = base_rec * 1.25 + 1.0;
            if cur_rec > ceil {
                check.failures.push(format!(
                    "{name}/{backend}: recovery {cur_rec:.1} us > {ceil:.1} us \
                     (baseline {base_rec:.1} us + 25% + 1 us slack)"
                ));
            }
        }
        if let (Some(base_gp), Some(cur_gp)) = (
            base.f64_of("goodput_fraction"),
            fa.f64_of("goodput_fraction"),
        ) {
            let floor = base_gp - 0.02;
            if cur_gp < floor {
                check.failures.push(format!(
                    "{name}/{backend}: goodput {cur_gp:.4} < {floor:.4} \
                     (baseline {base_gp:.4} - 0.02)"
                ));
            }
        }
        // Only gate class isolation where the baseline exhibits it: a
        // uniform-weight scenario legitimately reports gold == bronze.
        let base_isolates = matches!(
            (base.f64_of("gold_p99_ns"), base.f64_of("bronze_p99_ns")),
            (Some(g), Some(b)) if g < b
        );
        if base_isolates {
            if let (Some(gold), Some(bronze)) =
                (fa.f64_of("gold_p99_ns"), fa.f64_of("bronze_p99_ns"))
            {
                if gold >= bronze {
                    check.failures.push(format!(
                        "{name}/{backend}: gold p99 {gold:.0} ns >= bronze p99 {bronze:.0} ns \
                         under failure — SLO isolation broke"
                    ));
                }
            }
        }
    }
    check
}

/// `(scenario, backend, kv-object)` triples of a report.
fn kv_rows(doc: &Json) -> Vec<(String, String, Json)> {
    let mut out = Vec::new();
    if let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) {
        for sc in scenarios {
            let name = sc
                .get("spec")
                .and_then(|s| s.str_of("name"))
                .unwrap_or("?")
                .to_string();
            if let Some(runs) = sc.get("runs").and_then(Json::as_arr) {
                for run in runs {
                    if let Some(kv) = run.get("kv") {
                        let backend = run.str_of("backend").unwrap_or("?").to_string();
                        out.push((name.clone(), backend, kv.clone()));
                    }
                }
            }
        }
    }
    out
}

/// The p99 slack given to every KV latency gate: 25 % relative plus 1 µs
/// absolute, matching the fault-recovery gate's quantization allowance.
fn kv_p99_ceiling(base_ns: f64) -> f64 {
    base_ns * 1.25 + 1_000.0
}

/// Gates a fresh report's KV-service outcomes against a baseline's — the
/// CI `kv-matrix` lane's check. For every `(scenario, backend)` pair whose
/// baseline run carries a `kv` section:
///
/// * the current run must carry one too (a run that lost its section
///   means the KV plane was silently disabled — fail);
/// * `corrupt` must be zero: every verified GET returned the exact value
///   image the directory plane placed;
/// * per value-size class, GET p99 may regress by at most 25 % (+1 µs of
///   slack), matched by class byte size;
/// * achieved throughput (`achieved_fraction`) may drop by at most 0.02
///   absolute;
/// * where the baseline's SLO rows kept gold p99 below bronze p99, the
///   current run must too.
///
/// Pairs absent from the current report are [`check_baseline`]'s problem;
/// this check only compares KV physics where both sides ran.
pub fn check_kv_baseline(current: &Json, baseline: &Json) -> BaselineCheck {
    let mut check = BaselineCheck::default();
    let cur = kv_rows(current);
    for (name, backend, base) in kv_rows(baseline) {
        let Some((_, _, kv)) = cur.iter().find(|(n, b, _)| *n == name && *b == backend) else {
            if run_rows(current)
                .iter()
                .any(|r| r.name == name && r.backend == backend)
            {
                check.failures.push(format!(
                    "{name}/{backend}: baseline has a kv section, current run does not"
                ));
            }
            continue;
        };
        if kv.f64_of("corrupt").is_none_or(|c| c != 0.0) {
            check.failures.push(format!(
                "{name}/{backend}: {} corrupt GET responses (value verification failed)",
                kv.f64_of("corrupt").unwrap_or(f64::NAN)
            ));
        }
        if let (Some(base_af), Some(cur_af)) = (
            base.f64_of("achieved_fraction"),
            kv.f64_of("achieved_fraction"),
        ) {
            let floor = base_af - 0.02;
            if cur_af < floor {
                check.failures.push(format!(
                    "{name}/{backend}: achieved throughput {cur_af:.4} < {floor:.4} \
                     (baseline {base_af:.4} - 0.02)"
                ));
            }
        }
        let (base_classes, cur_classes) = (
            base.get("classes").and_then(Json::as_arr),
            kv.get("classes").and_then(Json::as_arr),
        );
        if let (Some(base_classes), Some(cur_classes)) = (base_classes, cur_classes) {
            for bc in base_classes {
                let Some(bytes) = bc.f64_of("bytes") else {
                    continue;
                };
                // A class with no GETs reports p99 = 0; nothing to gate.
                let Some(base_p99) = bc.f64_of("get_p99_ns").filter(|&p| p > 0.0) else {
                    continue;
                };
                let Some(cur_p99) = cur_classes
                    .iter()
                    .find(|c| c.f64_of("bytes") == Some(bytes))
                    .and_then(|c| c.f64_of("get_p99_ns"))
                else {
                    check.failures.push(format!(
                        "{name}/{backend}: baseline has a {bytes:.0}-byte value class, \
                         current kv section does not"
                    ));
                    continue;
                };
                let ceil = kv_p99_ceiling(base_p99);
                if cur_p99 > ceil {
                    check.failures.push(format!(
                        "{name}/{backend}: {bytes:.0}-byte GET p99 {cur_p99:.0} ns > \
                         {ceil:.0} ns (baseline {base_p99:.0} ns + 25% + 1 us slack)"
                    ));
                }
            }
        }
        // Only gate SLO separation where the baseline exhibits it.
        let slo_p99 = |obj: &Json, class: &str| -> Option<f64> {
            obj.get("slo")?
                .as_arr()?
                .iter()
                .find(|row| row.str_of("class") == Some(class))?
                .f64_of("lat_p99_ns")
        };
        let base_isolates = matches!(
            (slo_p99(&base, "gold"), slo_p99(&base, "bronze")),
            (Some(g), Some(b)) if g < b
        );
        if base_isolates {
            if let (Some(gold), Some(bronze)) = (slo_p99(kv, "gold"), slo_p99(kv, "bronze")) {
                if gold >= bronze {
                    check.failures.push(format!(
                        "{name}/{backend}: gold p99 {gold:.0} ns >= bronze p99 {bronze:.0} ns \
                         — KV SLO isolation broke"
                    ));
                }
            }
        }
    }
    check
}

/// Strips the bulky `per_node` pipeline dumps from a report, recursively,
/// leaving every aggregate (pipeline_total, fabric, per_tenant, sharding,
/// faults) intact. `baseline --regen` checks in the slimmed form, which
/// keeps `bench/baseline.json` a reviewable size at rack scale — the
/// per-node rows carry no information the gates read.
pub fn slim_report(doc: &Json) -> Json {
    match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "per_node")
                .map(|(k, v)| (k.clone(), slim_report(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(slim_report).collect()),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Parallel-equivalence diffing.
// ---------------------------------------------------------------------

/// Whether `key` is excluded from the parallel-equivalence comparison:
/// host-dependent wall-clock fields (`wall_*`, `calibration`), the
/// requested thread count itself, the speculation depth (another pure
/// wall-clock knob — a speculative run must be byte-identical to a
/// conservative one, which is exactly what `diff-runs` proves when only
/// these knobs differ), the partition-dependent `sharding` run section,
/// and the `trace` sections (both the spec's and the run's — the trace
/// *file* is gated byte-for-byte separately, and stripping the report
/// sections lets `diff-runs` also compare a traced run against an
/// untraced baseline).
fn equivalence_ignored(key: &str) -> bool {
    key.starts_with("wall_")
        || matches!(
            key,
            "calibration" | "sharding" | "threads" | "speculate_epochs" | "trace"
        )
}

/// Strips every [`equivalence_ignored`] member, recursively.
fn strip_volatile(doc: &Json) -> Json {
    match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| !equivalence_ignored(k))
                .map(|(k, v)| (k.clone(), strip_volatile(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

/// Caps the diff list: past a point, more entries add nothing.
const MAX_DIFFS: usize = 32;

fn diff_push(out: &mut Vec<String>, entry: String) {
    if out.len() < MAX_DIFFS {
        out.push(entry);
    }
}

fn diff_json(a: &Json, b: &Json, path: &str, out: &mut Vec<String>) {
    if out.len() >= MAX_DIFFS {
        return;
    }
    match (a, b) {
        (Json::Obj(ma), Json::Obj(mb)) => {
            for (k, va) in ma {
                match mb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_json(va, vb, &format!("{path}.{k}"), out),
                    None => diff_push(out, format!("{path}.{k}: present only in the first report")),
                }
            }
            for (k, _) in mb {
                if !ma.iter().any(|(ka, _)| ka == k) {
                    diff_push(
                        out,
                        format!("{path}.{k}: present only in the second report"),
                    );
                }
            }
        }
        (Json::Arr(aa), Json::Arr(ab)) => {
            if aa.len() != ab.len() {
                diff_push(
                    out,
                    format!("{path}: array length {} vs {}", aa.len(), ab.len()),
                );
                return;
            }
            for (i, (va, vb)) in aa.iter().zip(ab).enumerate() {
                diff_json(va, vb, &format!("{path}[{i}]"), out);
            }
        }
        _ => {
            let (ra, rb) = (a.render(), b.render());
            if ra != rb {
                diff_push(out, format!("{path}: {ra} vs {rb}"));
            }
        }
    }
}

/// Compares two scenario reports for *simulated* equivalence: every
/// member except the wall-clock fields, the calibration block, and the
/// shard-metadata section must be byte-identical. Returns the list of
/// differences (empty means equivalent) — this is the check the CI
/// `parallel-equivalence` step runs between `--threads 1` and
/// `--threads 4` reports.
pub fn equivalence_diff(a: &Json, b: &Json) -> Vec<String> {
    let (sa, sb) = (strip_volatile(a), strip_volatile(b));
    let mut out = Vec::new();
    diff_json(&sa, &sb, "$", &mut out);
    out
}

// ---------------------------------------------------------------------
// Canned specs.
// ---------------------------------------------------------------------

/// The three small specs the CI `bench-smoke` lane runs.
pub fn smoke_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "smoke-uniform-8".into(),
            nodes: 8,
            backend: BackendSel::All,
            workload: WorkloadKind::UniformRead,
            op_bytes: 256,
            ops_per_node: 1500,
            window: 12,
            seed: 7,
            ..ScenarioSpec::default()
        },
        ScenarioSpec {
            name: "smoke-torus-16".into(),
            nodes: 16,
            topology: TopologySpec::Torus2d(4, 4),
            backend: BackendSel::One(BackendKind::Sonuma),
            workload: WorkloadKind::NeighborRead,
            op_bytes: 1024,
            ops_per_node: 400,
            window: 8,
            seed: 11,
            ..ScenarioSpec::default()
        },
        ScenarioSpec {
            name: "smoke-mixed-4".into(),
            nodes: 4,
            backend: BackendSel::All,
            workload: WorkloadKind::Mixed,
            read_fraction: 0.75,
            op_bytes: 128,
            ops_per_node: 2000,
            window: 16,
            seed: 13,
            ..ScenarioSpec::default()
        },
    ]
}

/// The rack-scale scenario: 512 soNUMA nodes streaming neighbor reads —
/// the scale the paper's §6 fabric discussion targets.
pub fn rack512_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack512-neighbor".into(),
        nodes: 512,
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::NeighborRead,
        op_bytes: 512,
        ops_per_node: 8,
        window: 4,
        segment_bytes: 1 << 18,
        seed: 99,
        ..ScenarioSpec::default()
    }
}

/// The routing-heavy rack: 512 nodes arranged as an 8×8×8 3D torus (the
/// "low-dimensional k-ary n-cube" of §6), every node issuing 1 KB
/// (16-line) reads to uniformly random peers. Average route length is ~6
/// hops, so each operation drives ~192 link traversals — per-packet
/// routing and link-state work dominates the event loop, which is what
/// the dense-fabric refactor and `wall_packets_per_sec` gate protect.
pub fn rack512_torus_scan_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack512-torus-scan".into(),
        nodes: 512,
        topology: TopologySpec::Torus3d(8, 8, 8),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::UniformRead,
        op_bytes: 1024,
        ops_per_node: 16,
        window: 4,
        segment_bytes: 1 << 18,
        seed: 77,
        ..ScenarioSpec::default()
    }
}

/// The multi-tenant rack: 64 nodes, 1024 tenants (16 per node, each with
/// its own QP), Zipf-skewed open-loop Poisson traffic, WDRR scheduling
/// with uniform weights. The fairness acceptance scenario: with equal
/// weights and a feasible offered load, every tenant's delivered
/// fraction should be near 1 and Jain's index ≥ 0.95.
pub fn rack64_tenants_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack64-tenants".into(),
        nodes: 64,
        backend: BackendSel::All,
        workload: WorkloadKind::Mixed,
        read_fraction: 0.8,
        op_bytes: 64,
        segment_bytes: 1 << 18,
        seed: 4242,
        tenancy: Some(TenancySpec {
            tenants: 1024,
            scheduler: SchedPolicy::Wdrr,
            weights: WeightMode::Uniform,
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Poisson,
            rate_per_tenant: 150_000.0,
            duration_us: 200.0,
            zipf_addr: 0.9,
            zipf_dst: 0.4,
            burst: 8,
        }),
        ..ScenarioSpec::default()
    }
}

/// The noisy-neighbor rack: same shape as [`rack64_tenants_spec`] but
/// phase-aligned bursty arrivals under strict-priority scheduling with
/// tiered weights — every epoch, all 16 tenants of a node dump a burst
/// into their WQs at once, and the RGP drains gold first. Expected
/// outcome: gold p99 well below bronze p99 on the soNUMA backend.
pub fn rack64_tenants_strict_spec() -> ScenarioSpec {
    #[allow(clippy::needless_update)]
    ScenarioSpec {
        name: "rack64-tenants-strict".into(),
        tenancy: Some(TenancySpec {
            tenants: 1024,
            scheduler: SchedPolicy::StrictPriority,
            weights: WeightMode::Tiered,
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Bursty,
            rate_per_tenant: 150_000.0,
            duration_us: 200.0,
            zipf_addr: 0.9,
            zipf_dst: 0.4,
            burst: 16,
        }),
        ..rack64_tenants_spec()
    }
}

/// The sharded-engine showcase: 1024 soNUMA nodes as a 16×8×8 3D torus,
/// every node streaming reads to its ring successor, executed across 4
/// shard threads (`[execution] threads = 4`). Twice the node count the
/// serial engine was sized for, kept affordable in CI wall-clock by the
/// conservative-parallel engine — and, like every scenario, bit-identical
/// at any `--threads` value.
pub fn rack1024_shard_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack1024-shard".into(),
        nodes: 1024,
        topology: TopologySpec::Torus3d(16, 8, 8),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::NeighborRead,
        op_bytes: 512,
        ops_per_node: 8,
        window: 4,
        segment_bytes: 1 << 18,
        seed: 1024,
        threads: 4,
        ..ScenarioSpec::default()
    }
}

/// The memory-diet showcase: 4096 soNUMA nodes as a 16×16×16 3D torus —
/// the largest rack the paper's addressing model reaches — on 4 shard
/// threads. Light per-node work (4 ops to the ring successor) keeps the
/// wall clock in CI budget; what the scenario actually exercises is
/// state: lazily grown ITT/CT tables, sparse physical memory, and
/// 16-entry QP rings (WQ and CQ share one guest page instead of two)
/// hold the whole machine's resident heap to tens of megabytes where
/// eager tables would cost gigabytes. The report's
/// `sharding.resident_bytes` is the number the CI budget asserts on.
pub fn rack4096_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack4096".into(),
        nodes: 4096,
        topology: TopologySpec::Torus3d(16, 16, 16),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::NeighborRead,
        op_bytes: 256,
        ops_per_node: 4,
        window: 4,
        segment_bytes: 1 << 16,
        seed: 4096,
        threads: 4,
        qp_entries: 16,
        ..ScenarioSpec::default()
    }
}

/// The speculation rack: 8192 nodes as a 16×16×32 3D torus on 8 shard
/// threads with speculative run-ahead (`K = 2`) enabled. This is the
/// scale ROADMAP item 2 names past `rack4096`: a fully-synchronized
/// symmetric rack where the lookahead matrix's diagonal binds, so the
/// conservative engine pays one barrier per scalar lookahead and the
/// speculative engine's extra in-release levels and clock bets are what
/// keep the barrier count (and wall time) in budget. Memory rides the
/// rack4096 diet (16-entry QP rings, lazy tables, sparse memory); the
/// CI lane budgets the whole run under 4 GiB peak RSS. The report's
/// `sharding.speculation` counters record how the bets settled.
pub fn rack8192_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack8192".into(),
        nodes: 8192,
        topology: TopologySpec::Torus3d(16, 16, 32),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::NeighborRead,
        op_bytes: 256,
        ops_per_node: 2,
        window: 4,
        segment_bytes: 1 << 16,
        seed: 8192,
        threads: 8,
        qp_entries: 16,
        speculate_epochs: 2,
        ..ScenarioSpec::default()
    }
}

/// The link-failure rack: 512 nodes as an 8×8×8 3D torus, one open-loop
/// tenant per node, with 4 directed links killed at 20 µs (reviving at
/// 60 µs) and 8 more degraded (1 % drop, 0.5 % corruption) for the whole
/// run. What the scenario demonstrates: adaptive routing steers packets
/// around the dead links, the source-side retransmission path recovers
/// dropped and corrupted lines, and cluster goodput returns to ≥ 90 % of
/// its pre-kill rate — the `faults.recovered` flag the fault-matrix CI
/// lane gates on.
pub fn rack512_linkflap_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack512-linkflap".into(),
        nodes: 512,
        topology: TopologySpec::Torus3d(8, 8, 8),
        backend: BackendSel::All,
        workload: WorkloadKind::Mixed,
        read_fraction: 0.8,
        op_bytes: 64,
        segment_bytes: 1 << 18,
        seed: 512_512,
        tenancy: Some(TenancySpec {
            tenants: 512,
            scheduler: SchedPolicy::Wdrr,
            weights: WeightMode::Uniform,
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Poisson,
            rate_per_tenant: 200_000.0,
            duration_us: 100.0,
            zipf_addr: 0.5,
            zipf_dst: 0.0,
            burst: 8,
        }),
        faults: Some(FaultSpec {
            seed: 7_001,
            degraded_links: 8,
            drop_prob: 0.01,
            corrupt_prob: 0.005,
            killed_links: 4,
            kill_at_us: 20.0,
            revive_at_us: 60.0,
            ..FaultSpec::default()
        }),
        ..ScenarioSpec::default()
    }
}

/// The node-failure rack: 1024 nodes as a 16×8×8 3D torus, 1024 tenants
/// under strict-priority scheduling with tiered weights, on 4 shard
/// threads — and 16 nodes (1/64 of the rack) crash mid-burst at 30 µs,
/// restarting cold at 50 µs. In-flight operations against the dead nodes
/// time out, retransmit with backoff, and abort with error completions;
/// everyone else's traffic reroutes and keeps flowing. The acceptance
/// bar: byte-identical at any thread count, goodput back to ≥ 90 % of
/// the pre-crash rate, and gold p99 still below bronze p99 in the same
/// failing run.
pub fn rack1024_nodekill_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack1024-nodekill".into(),
        nodes: 1024,
        topology: TopologySpec::Torus3d(16, 8, 8),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::Mixed,
        read_fraction: 0.8,
        op_bytes: 64,
        segment_bytes: 1 << 18,
        seed: 1_024_042,
        threads: 4,
        tenancy: Some(TenancySpec {
            tenants: 2048,
            scheduler: SchedPolicy::StrictPriority,
            weights: WeightMode::Tiered,
        }),
        // Burst 4 at 400 kops/s/tenant => one phase-aligned burst every
        // 10 µs, so the 30 µs crash lands exactly on a burst epoch and
        // the [30, 50) µs outage window sees two full burst rounds.
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Bursty,
            rate_per_tenant: 400_000.0,
            duration_us: 100.0,
            zipf_addr: 0.5,
            zipf_dst: 0.2,
            burst: 4,
        }),
        faults: Some(FaultSpec {
            seed: 7_002,
            crashed_nodes: 16,
            crash_at_us: 30.0,
            restart_at_us: 50.0,
            ..FaultSpec::default()
        }),
        ..ScenarioSpec::default()
    }
}

/// The KV-cache service rack: 512 nodes as an 8×8×8 3D torus serving a
/// 2048-key store with 4 KB–32 KB values (four power-of-two size
/// classes). GETs are one-sided multi-line `rmc_read`s against the
/// deterministic directory plane; PUTs rewrite the key's value image in
/// place. 1024 open-loop tenants (2 per node, WDRR with tiered weights)
/// issue a 90/10 GET/PUT mix over moderately Zipf-skewed keys with
/// repeat reads. Runs on all three backends; the per-class GET p99 rows
/// are the one-sided-vs-messaging crossover table, and the `kv-matrix`
/// CI lane gates them against `bench/baseline.json`.
pub fn rack512_kv_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack512-kv".into(),
        nodes: 512,
        topology: TopologySpec::Torus3d(8, 8, 8),
        backend: BackendSel::All,
        workload: WorkloadKind::Mixed,
        read_fraction: 0.9,
        op_bytes: 4096,
        segment_bytes: 1 << 19,
        seed: 512_900,
        tenancy: Some(TenancySpec {
            tenants: 1024,
            scheduler: SchedPolicy::Wdrr,
            weights: WeightMode::Tiered,
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Poisson,
            rate_per_tenant: 40_000.0,
            duration_us: 40.0,
            zipf_addr: 0.0,
            zipf_dst: 0.0,
            burst: 8,
        }),
        kv: Some(KvSpec {
            keys: 2048,
            value_min: 4096,
            value_max: 32768,
            zipf_key: 0.9,
            get_fraction: 0.9,
            repeat_prob: 0.3,
            seed: 9_000,
        }),
        ..ScenarioSpec::default()
    }
}

/// The hot-key KV rack: 1024 nodes as a 16×8×8 3D torus, 4096 keys with
/// 4 KB–16 KB values, and a hard Zipf 1.2 key skew with 40 % repeat
/// reads — the cache-hostile popularity curve of a production KV tier.
/// 2048 tenants under strict-priority scheduling with tiered weights
/// drive phase-aligned bursts, so gold tenants' GETs overtake bronze
/// backlogs at the home node's RGP: the acceptance bar is gold p99 below
/// bronze p99 in the report's `kv.slo` rows, on top of the usual
/// any-thread-count byte-identical contract.
pub fn rack1024_kv_zipf_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "rack1024-kv-zipf".into(),
        nodes: 1024,
        topology: TopologySpec::Torus3d(16, 8, 8),
        backend: BackendSel::All,
        workload: WorkloadKind::Mixed,
        read_fraction: 0.95,
        op_bytes: 4096,
        segment_bytes: 1 << 19,
        seed: 1_024_900,
        threads: 4,
        tenancy: Some(TenancySpec {
            tenants: 2048,
            scheduler: SchedPolicy::StrictPriority,
            weights: WeightMode::Tiered,
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Bursty,
            rate_per_tenant: 40_000.0,
            duration_us: 40.0,
            zipf_addr: 0.0,
            zipf_dst: 0.0,
            burst: 4,
        }),
        kv: Some(KvSpec {
            keys: 4096,
            value_min: 4096,
            value_max: 16384,
            zipf_key: 1.2,
            get_fraction: 0.95,
            repeat_prob: 0.4,
            seed: 9_001,
        }),
        ..ScenarioSpec::default()
    }
}

/// Every canned spec, addressable by name from the CLI.
pub fn canned_specs() -> Vec<ScenarioSpec> {
    let mut specs = smoke_specs();
    specs.push(rack512_spec());
    specs.push(rack512_torus_scan_spec());
    specs.push(rack64_tenants_spec());
    specs.push(rack64_tenants_strict_spec());
    specs.push(rack1024_shard_spec());
    specs.push(rack4096_spec());
    specs.push(rack8192_spec());
    specs.push(rack512_linkflap_spec());
    specs.push(rack1024_nodekill_spec());
    specs.push(rack512_kv_spec());
    specs.push(rack1024_kv_zipf_spec());
    specs
}
