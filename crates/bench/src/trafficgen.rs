//! Deterministic open-loop traffic generation for multi-tenant scenarios.
//!
//! Closed-loop drivers (post, wait, post again) measure a system that is
//! never overcommitted; rack-scale tenancy questions — noisy neighbors,
//! incast, SLO-class separation — only appear under *open-loop* load,
//! where arrivals keep coming whether or not earlier operations finished.
//! This module provides the three seeded arrival processes
//! ([`ArrivalGen`]: Poisson, uniform, bursty) and the Zipf samplers
//! ([`ZipfSampler`]) that skew destination-node and remote-address
//! selection, all driven from `sonuma_sim::DetRng` so a spec + seed fully
//! determines the offered stream.
//!
//! Everything here is pure generation; the scenario harness owns the
//! loop that posts arrivals into a `RemoteBackend` and accounts
//! completions per tenant.

use sonuma_sim::DetRng;

/// Shape of a tenant's arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless arrivals: exponential inter-arrival times (the classic
    /// open-loop model).
    Poisson,
    /// Fixed inter-arrival interval (a perfectly paced load generator).
    Uniform,
    /// Back-to-back bursts of `burst` arrivals at epoch boundaries, all
    /// tenants phase-aligned — the worst case for head-of-line blocking
    /// inside one node's RGP.
    Bursty,
}

impl ArrivalKind {
    /// Spec/report label.
    pub fn as_str(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Uniform => "uniform",
            ArrivalKind::Bursty => "bursty",
        }
    }

    /// Parses a spec label.
    ///
    /// # Errors
    ///
    /// Returns the unknown label back.
    pub fn parse(s: &str) -> Result<ArrivalKind, String> {
        match s {
            "poisson" => Ok(ArrivalKind::Poisson),
            "uniform" => Ok(ArrivalKind::Uniform),
            "bursty" => Ok(ArrivalKind::Bursty),
            other => Err(format!(
                "unknown arrival process {other:?} (poisson|uniform|bursty)"
            )),
        }
    }
}

/// One tenant's arrival-time generator: yields absolute arrival times in
/// picoseconds, strictly ordered, until the horizon.
#[derive(Debug)]
pub struct ArrivalGen {
    kind: ArrivalKind,
    /// Mean inter-arrival time, ps.
    mean_ps: f64,
    /// Arrivals per burst (bursty only).
    burst: u32,
    /// Next arrival's absolute time, ps.
    next_ps: f64,
    /// Arrivals remaining in the current burst (bursty only).
    in_burst: u32,
}

impl ArrivalGen {
    /// A generator producing `rate_per_sec` arrivals per simulated second
    /// on average, starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or `burst` is zero.
    pub fn new(kind: ArrivalKind, rate_per_sec: f64, burst: u32) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        assert!(burst > 0, "burst must be nonzero");
        ArrivalGen {
            kind,
            mean_ps: 1e12 / rate_per_sec,
            burst,
            next_ps: 0.0,
            in_burst: burst,
        }
    }

    /// The next arrival at or before `horizon_ps`, advancing internal
    /// state; `None` once the process passes the horizon (it stays
    /// exhausted — arrivals stop at the horizon for good).
    pub fn next_arrival(&mut self, rng: &mut DetRng, horizon_ps: u64) -> Option<u64> {
        if self.next_ps > horizon_ps as f64 {
            return None;
        }
        let arrival = self.next_ps as u64;
        let delta = match self.kind {
            ArrivalKind::Uniform => self.mean_ps,
            ArrivalKind::Poisson => {
                // Inverse-CDF exponential draw; 1-u keeps the argument
                // of ln strictly positive.
                let u = rng.unit_f64();
                -(1.0 - u).ln() * self.mean_ps
            }
            ArrivalKind::Bursty => {
                // `burst` arrivals land back-to-back, then the process
                // idles to the next epoch so the long-run rate matches.
                self.in_burst -= 1;
                if self.in_burst > 0 {
                    0.0
                } else {
                    self.in_burst = self.burst;
                    self.mean_ps * self.burst as f64
                }
            }
        };
        self.next_ps += delta.max(1.0);
        Some(arrival)
    }

    /// The absolute time of the next arrival, ps (may be past the
    /// horizon).
    pub fn peek_ps(&self) -> u64 {
        self.next_ps as u64
    }
}

/// A Zipf(θ) sampler over `n` ranked items: rank 0 is the most popular,
/// with probability proportional to `1/(r+1)^θ`. θ = 0 degenerates to
/// uniform. The CDF is precomputed once and shared per shape, so
/// per-arrival sampling is one RNG draw plus a binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "empty Zipf support");
        assert!(theta >= 0.0, "negative Zipf skew");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit_f64();
        // First rank whose cumulative mass covers u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true — construction rejects
    /// `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Jain's fairness index over per-tenant allocations: `(Σx)² / (n·Σx²)`,
/// 1.0 for perfectly equal shares, `1/n` when one tenant takes
/// everything. Zero-only inputs report 0.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_hits_the_requested_rate() {
        let mut rng = DetRng::seed(7);
        let mut gen = ArrivalGen::new(ArrivalKind::Poisson, 1e6, 1); // 1 op/us
        let horizon = 10_000_000_000; // 10 ms => expect ~10k arrivals
        let mut count = 0u64;
        while gen.next_arrival(&mut rng, horizon).is_some() {
            count += 1;
        }
        assert!(
            (9_000..11_000).contains(&count),
            "Poisson at 1 op/us over 10 ms produced {count} arrivals"
        );
    }

    #[test]
    fn uniform_is_exactly_paced() {
        let mut rng = DetRng::seed(1);
        let mut gen = ArrivalGen::new(ArrivalKind::Uniform, 1e6, 1);
        let t0 = gen.next_arrival(&mut rng, u64::MAX).unwrap();
        let t1 = gen.next_arrival(&mut rng, u64::MAX).unwrap();
        let t2 = gen.next_arrival(&mut rng, u64::MAX).unwrap();
        assert_eq!(t0, 0);
        assert_eq!(t1 - t0, 1_000_000, "1 us spacing at 1 op/us");
        assert_eq!(t2 - t1, 1_000_000);
    }

    #[test]
    fn bursty_clusters_and_keeps_long_run_rate() {
        let mut rng = DetRng::seed(2);
        let mut gen = ArrivalGen::new(ArrivalKind::Bursty, 1e6, 4);
        let times: Vec<u64> = (0..8)
            .map(|_| gen.next_arrival(&mut rng, u64::MAX).unwrap())
            .collect();
        // First burst of 4 lands (nearly) together, next burst one epoch
        // later.
        assert!(times[3] - times[0] <= 3, "burst is back-to-back: {times:?}");
        assert!(
            times[4] >= 4_000_000,
            "epoch gap restores the rate: {times:?}"
        );
        assert!(times[7] - times[4] <= 3);
    }

    #[test]
    fn arrivals_are_deterministic_and_exhaust_at_horizon() {
        let stream = |seed| {
            let mut rng = DetRng::seed(seed);
            let mut gen = ArrivalGen::new(ArrivalKind::Poisson, 1e7, 1);
            let mut out = Vec::new();
            while let Some(t) = gen.next_arrival(&mut rng, 1_000_000) {
                out.push(t);
            }
            // Exhausted generators stay exhausted at the same horizon.
            assert!(gen.next_arrival(&mut rng, 1_000_000).is_none());
            assert!(gen.peek_ps() > 1_000_000);
            out
        };
        assert_eq!(stream(42), stream(42));
        assert_ne!(stream(42), stream(43));
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = DetRng::seed(3);
        let z = ZipfSampler::new(100, 0.99);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 10,
            "rank 0 ({}) must dominate rank 50 ({})",
            counts[0],
            counts[50]
        );
        assert_eq!(counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let mut rng = DetRng::seed(4);
        let z = ZipfSampler::new(10, 0.0);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < min * 2, "θ=0 must be near-uniform: {counts:?}");
    }

    #[test]
    fn jain_index_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "one-taker gives 1/n");
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
    }
}
