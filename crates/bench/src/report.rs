//! CSV emission for the figure harnesses, so results can be plotted with
//! any external tool (`gen-figures --csv <dir>`), plus the per-node RMC
//! pipeline-counter report.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use sonuma_core::PipelineStats;

/// A simple CSV table: header plus rows of stringified cells.
///
/// Deliberately has no `Default`: a table with an empty header would make
/// every [`CsvTable::row`] call panic, so the only constructor is
/// [`CsvTable::new`] with explicit column names.
#[derive(Debug, Clone)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        CsvTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "ragged CSV row");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows (the `is_empty` twin clippy's
    /// `len_without_is_empty` expects next to [`CsvTable::len`]).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column names, in order.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order (read-back for consumers that
    /// post-process tables instead of writing them straight to disk).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table to `<dir>/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a float with enough precision for plotting.
pub fn cell(v: f64) -> String {
    format!("{v:.4}")
}

/// Builds the per-node RMC pipeline-counter table: one labeled row per
/// snapshot (typically one per node plus a "total"), one column per
/// counter (`rgp_requests`, `rgp_lines`, RRPP/RCP equivalents, stalls).
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn pipeline_stats_table(rows: &[(String, PipelineStats)]) -> CsvTable {
    let (_, first) = rows.first().expect("at least one stats row");
    let mut header: Vec<&str> = vec!["node"];
    header.extend(first.rows().iter().map(|(name, _)| *name));
    let mut t = CsvTable::new(&header);
    for (label, stats) in rows {
        let mut cells = vec![label.clone()];
        cells.extend(stats.rows().iter().map(|(_, v)| v.to_string()));
        t.row(&cells);
    }
    t
}

/// Prints a pipeline-counter table in aligned columns (the human-readable
/// sibling of [`pipeline_stats_table`]).
pub fn print_pipeline_stats(title: &str, rows: &[(String, PipelineStats)]) {
    println!("\n{title}");
    let names: Vec<&str> = rows
        .first()
        .map(|(_, s)| s.rows().iter().map(|(n, _)| *n).collect())
        .unwrap_or_default();
    print!("{:>12}", "node");
    for n in &names {
        print!(" {n:>16}");
    }
    println!();
    for (label, stats) in rows {
        print!("{label:>12}");
        for (_, v) in stats.rows() {
            print!(" {v:>16}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = CsvTable::new(&["size", "latency_ns"]);
        assert!(t.is_empty());
        t.row(&["64".into(), cell(350.25)]);
        t.row(&["128".into(), cell(353.0)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.header(), &["size".to_string(), "latency_ns".to_string()]);
        assert_eq!(t.rows()[1][0], "128");
        let csv = t.to_csv();
        assert_eq!(csv, "size,latency_ns\n64,350.2500\n128,353.0000\n");
    }

    #[test]
    fn save_writes_a_file() {
        let dir = std::env::temp_dir().join("sonuma_csv_test");
        let mut t = CsvTable::new(&["a"]);
        t.row(&["1".into()]);
        let path = t.save(&dir, "probe").unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a\n1\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn pipeline_stats_render_one_column_per_counter() {
        let a = PipelineStats {
            rgp_requests: 3,
            rcp_completions: 3,
            ..PipelineStats::default()
        };
        let rows = vec![("n0".to_string(), a), ("total".to_string(), a.merge(a))];
        let t = pipeline_stats_table(&rows);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("node,rgp_requests,rgp_lines"));
        assert!(header.contains("rgp_itt_stalls"));
        assert!(header.contains("rrpp_served"));
        assert!(header.contains("rcp_completions"));
        assert!(lines.next().unwrap().starts_with("n0,3,"));
        assert!(lines.next().unwrap().starts_with("total,6,"));
        // Human-readable sibling must not panic.
        print_pipeline_stats("probe", &rows);
    }
}
