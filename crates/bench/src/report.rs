//! CSV emission for the figure harnesses, so results can be plotted with
//! any external tool (`gen-figures --csv <dir>`).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple CSV table: header plus rows of stringified cells.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        CsvTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "ragged CSV row");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table to `<dir>/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a float with enough precision for plotting.
pub fn cell(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = CsvTable::new(&["size", "latency_ns"]);
        assert!(t.is_empty());
        t.row(&["64".into(), cell(350.25)]);
        t.row(&["128".into(), cell(353.0)]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv, "size,latency_ns\n64,350.2500\n128,353.0000\n");
    }

    #[test]
    fn save_writes_a_file() {
        let dir = std::env::temp_dir().join("sonuma_csv_test");
        let mut t = CsvTable::new(&["a"]);
        t.row(&["1".into()]);
        let path = t.save(&dir, "probe").unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a\n1\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(&["1".into()]);
    }
}
