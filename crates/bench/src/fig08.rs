//! Figure 8: send/receive performance of the software messaging library
//! (§5.3), sweeping the push/pull threshold.
//!
//! * 8a — half-duplex ping-pong latency on the simulated hardware; the
//!   paper reports a 340 ns minimum and finds 256 B the best threshold.
//! * 8b — streaming bandwidth; push flattens (per-packet posting cost),
//!   pull scales with size.
//! * 8c — the development platform, where the best threshold grows to
//!   1 KB.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_core::{
    drain_completions, AppProcess, Messenger, MsgConfig, MsgError, NodeApi, NodeId, RecvPoll,
    SimTime, Step, SystemBuilder, Wake,
};

use crate::fig07::Platform;
use crate::workloads::Shared;
use crate::SWEEP_SIZES;

fn message_pattern(k: u32, size: usize) -> Vec<u8> {
    (0..size).map(|i| (k as usize * 31 + i * 7) as u8).collect()
}

fn system(platform: Platform) -> sonuma_core::SonumaSystem {
    let b = match platform {
        Platform::SimulatedHardware => SystemBuilder::simulated_hardware(2),
        Platform::DevPlatform => SystemBuilder::dev_platform(2),
    };
    b.segment_len(8 << 20).qp_entries(256).build()
}

fn msg_config(platform: Platform, threshold: u64) -> MsgConfig {
    let base = match platform {
        Platform::SimulatedHardware => MsgConfig::hardware(),
        Platform::DevPlatform => MsgConfig::dev_platform(),
    };
    base.with_threshold(threshold)
}

// ---------------------------------------------------------------------
// Ping-pong (latency).
// ---------------------------------------------------------------------

struct Pinger {
    m: Messenger,
    peer: NodeId,
    rounds: u32,
    warmup: u32,
    size: usize,
    current: u32,
    sent_current: bool,
    t_send: SimTime,
    sum_ps: u64,
    out: Shared<SimTime>,
}

impl AppProcess for Pinger {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            if self.current == self.rounds {
                let measured = (self.rounds - self.warmup) as u64;
                *self.out.borrow_mut() = SimTime::from_ps(self.sum_ps / measured / 2);
                return Step::Done;
            }
            if !self.sent_current {
                let data = message_pattern(self.current, self.size);
                self.t_send = api.now();
                match self.m.try_send(api, self.peer, &data) {
                    Ok(()) => self.sent_current = true,
                    Err(_) => return Step::WaitCq(self.m.qp()),
                }
            }
            match self.m.try_recv(api, self.peer).unwrap() {
                RecvPoll::Message(v) => {
                    debug_assert_eq!(v.len(), self.size);
                    if self.current >= self.warmup {
                        self.sum_ps += (api.now() - self.t_send).as_ps();
                    }
                    self.current += 1;
                    self.sent_current = false;
                }
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, self.peer);
                    // While one of our pushes is still window-limited, the
                    // event that unblocks progress is the peer's credit
                    // write, not the next inbound packet.
                    let (addr, len) = if self.m.all_sent() {
                        self.m.recv_watch(self.peer)
                    } else {
                        self.m.credit_watch(self.peer)
                    };
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

struct Echoer {
    m: Messenger,
    peer: NodeId,
    rounds: u32,
    echoed: u32,
    held: Option<Vec<u8>>,
}

impl AppProcess for Echoer {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            if self.echoed == self.rounds && self.held.is_none() {
                if !self.m.all_sent() {
                    return Step::WaitCq(self.m.qp());
                }
                return Step::Done;
            }
            if let Some(data) = self.held.take() {
                match self.m.try_send(api, self.peer, &data) {
                    Ok(()) => {
                        self.echoed += 1;
                        continue;
                    }
                    Err(_) => {
                        self.held = Some(data);
                        return Step::WaitCq(self.m.qp());
                    }
                }
            }
            match self.m.try_recv(api, self.peer).unwrap() {
                RecvPoll::Message(v) => self.held = Some(v),
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, self.peer);
                    // While one of our pushes is still window-limited, the
                    // event that unblocks progress is the peer's credit
                    // write, not the next inbound packet.
                    let (addr, len) = if self.m.all_sent() {
                        self.m.recv_watch(self.peer)
                    } else {
                        self.m.credit_watch(self.peer)
                    };
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

/// Measures half-duplex latency for one (platform, threshold, size) point.
pub fn half_duplex(platform: Platform, threshold: u64, size: usize) -> SimTime {
    let mut system = system(platform);
    let cfg = msg_config(platform, threshold);
    let qp0 = system.create_qp(NodeId(0), 0);
    let qp1 = system.create_qp(NodeId(1), 0);
    let out: Shared<SimTime> = Rc::new(RefCell::new(SimTime::ZERO));
    system.spawn(
        NodeId(0),
        0,
        Box::new(Pinger {
            m: Messenger::new(cfg, qp0, NodeId(0), 2, 0),
            peer: NodeId(1),
            rounds: 12,
            warmup: 4,
            size,
            current: 0,
            sent_current: false,
            t_send: SimTime::ZERO,
            sum_ps: 0,
            out: out.clone(),
        }),
    );
    system.spawn(
        NodeId(1),
        0,
        Box::new(Echoer {
            m: Messenger::new(cfg, qp1, NodeId(1), 2, 0),
            peer: NodeId(0),
            rounds: 12,
            echoed: 0,
            held: None,
        }),
    );
    system.run();
    let t = *out.borrow();
    t
}

// ---------------------------------------------------------------------
// Streaming (bandwidth).
// ---------------------------------------------------------------------

struct StreamSender {
    m: Messenger,
    to: NodeId,
    count: u32,
    size: usize,
    sent: u32,
}

impl AppProcess for StreamSender {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            if self.sent == self.count {
                if !self.m.all_sent() {
                    let (addr, len) = self.m.credit_watch(self.to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                return Step::Done;
            }
            let data = message_pattern(self.sent, self.size);
            match self.m.try_send(api, self.to, &data) {
                Ok(()) => self.sent += 1,
                Err(MsgError::NoCredit) => {
                    let (addr, len) = self.m.credit_watch(self.to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                Err(MsgError::Backpressure) => return Step::WaitCq(self.m.qp()),
                Err(e) => panic!("send failed: {e}"),
            }
        }
    }
}

struct StreamReceiver {
    m: Messenger,
    from: NodeId,
    count: u32,
    got: u32,
    bytes: u64,
    finished: Shared<(SimTime, u64)>,
}

impl AppProcess for StreamReceiver {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            if self.got == self.count {
                self.m.flush_credits(api, self.from);
                *self.finished.borrow_mut() = (api.now(), self.bytes);
                return Step::Done;
            }
            match self.m.try_recv(api, self.from).unwrap() {
                RecvPoll::Message(v) => {
                    self.bytes += v.len() as u64;
                    self.got += 1;
                }
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, self.from);
                    let (addr, len) = self.m.recv_watch(self.from);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

/// Measures streaming bandwidth (Gbps) for one (platform, threshold, size)
/// point.
pub fn streaming_gbps(platform: Platform, threshold: u64, size: usize) -> f64 {
    let mut sys = system(platform);
    let cfg = msg_config(platform, threshold);
    let count: u32 = ((2 << 20) / size.max(1)).clamp(32, 2000) as u32;
    let qp0 = sys.create_qp(NodeId(0), 0);
    let qp1 = sys.create_qp(NodeId(1), 0);
    let finished: Shared<(SimTime, u64)> = Rc::new(RefCell::new((SimTime::ZERO, 0)));
    sys.spawn(
        NodeId(0),
        0,
        Box::new(StreamSender {
            m: Messenger::new(cfg, qp0, NodeId(0), 2, 0),
            to: NodeId(1),
            count,
            size,
            sent: 0,
        }),
    );
    sys.spawn(
        NodeId(1),
        0,
        Box::new(StreamReceiver {
            m: Messenger::new(cfg, qp1, NodeId(1), 2, 0),
            from: NodeId(0),
            count,
            got: 0,
            bytes: 0,
            finished: finished.clone(),
        }),
    );
    sys.run();
    let (t, bytes) = *finished.borrow();
    sonuma_sim::stats::gbps(bytes, t)
}

// ---------------------------------------------------------------------
// Sweeps and printing.
// ---------------------------------------------------------------------

/// One row of the Fig. 8 sweep: the three threshold policies.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Message size in bytes.
    pub size: u64,
    /// Pull-only policy (threshold = 0).
    pub pull_only: f64,
    /// Push-only policy (threshold = infinity).
    pub push_only: f64,
    /// The platform's tuned threshold (256 B / 1 KB).
    pub tuned: f64,
}

/// Fig. 8a/8c: latency sweep (values in µs).
pub fn latency(platform: Platform) -> Vec<Row> {
    let tuned = match platform {
        Platform::SimulatedHardware => 256,
        Platform::DevPlatform => 1024,
    };
    SWEEP_SIZES
        .iter()
        .map(|&size| Row {
            size,
            pull_only: half_duplex(platform, 0, size as usize).as_us_f64(),
            push_only: half_duplex(platform, u64::MAX, size as usize).as_us_f64(),
            tuned: half_duplex(platform, tuned, size as usize).as_us_f64(),
        })
        .collect()
}

/// Fig. 8b: bandwidth sweep (values in Gbps).
pub fn bandwidth(platform: Platform) -> Vec<Row> {
    let tuned = match platform {
        Platform::SimulatedHardware => 256,
        Platform::DevPlatform => 1024,
    };
    SWEEP_SIZES
        .iter()
        .map(|&size| Row {
            size,
            pull_only: streaming_gbps(platform, 0, size as usize),
            push_only: streaming_gbps(platform, u64::MAX, size as usize),
            tuned: streaming_gbps(platform, tuned, size as usize),
        })
        .collect()
}

/// Prints a latency or bandwidth sweep.
pub fn print(title: &str, paper: &str, unit: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!("{paper}");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "size(B)",
        format!("pull({unit})"),
        format!("push({unit})"),
        format!("tuned({unit})")
    );
    for r in rows {
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>14.3}",
            r.size, r.pull_only, r.push_only, r.tuned
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_near_paper_minimum() {
        let lat = half_duplex(Platform::SimulatedHardware, 256, 64);
        let ns = lat.as_ns_f64();
        assert!(
            (250.0..700.0).contains(&ns),
            "64 B half-duplex {ns:.0} ns; paper reports ~340 ns minimum"
        );
    }

    #[test]
    fn push_beats_pull_below_threshold_and_loses_above() {
        let small_push = half_duplex(Platform::SimulatedHardware, u64::MAX, 64);
        let small_pull = half_duplex(Platform::SimulatedHardware, 0, 64);
        assert!(small_push < small_pull, "push wins small messages");
        let big_push = streaming_gbps(Platform::SimulatedHardware, u64::MAX, 8192);
        let big_pull = streaming_gbps(Platform::SimulatedHardware, 0, 8192);
        assert!(big_pull > big_push * 2.0, "pull wins large transfers");
    }

    #[test]
    fn tuned_bandwidth_exceeds_10gbps_at_4kb() {
        let bw = streaming_gbps(Platform::SimulatedHardware, 256, 4096);
        assert!(bw > 10.0, "4 KB tuned bandwidth {bw} Gbps (paper: >10)");
    }
}
