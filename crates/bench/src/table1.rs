//! Table 1: system parameters of the simulated hardware platform.

use sonuma_core::MachineConfig;

/// Renders Table 1 from the live configuration (so the printed table can
/// never drift from what the simulator actually uses).
pub fn print() {
    let c = MachineConfig::simulated_hardware(2);
    let h = &c.hierarchy;
    println!("\n=== Table 1: system parameters (from the live configuration) ===");
    println!(
        "{:<10} ARM Cortex-A15-like cost model, 2 GHz (paper: 64-bit, OoO, 3-wide)",
        "Core"
    );
    println!(
        "{:<10} split I/D {} KB {}-way, 64-byte blocks, {:.1}-ns tag+data",
        "L1",
        h.l1_geometry.size_bytes() / 1024,
        h.l1_geometry.ways(),
        h.l1_latency.as_ns_f64()
    );
    println!(
        "{:<10} {} MB, {}-way, {:.1}-ns latency",
        "L2",
        h.l2_geometry.size_bytes() / (1024 * 1024),
        h.l2_geometry.ways(),
        h.l2_latency.as_ns_f64()
    );
    println!(
        "{:<10} {:.0}-ns latency, {:.1} GB/s peak ({}% sustained), 8 KB pages",
        "Memory",
        h.dram.access_latency.as_ns_f64(),
        h.dram.peak_bytes_per_sec as f64 / 1e9,
        (h.dram.efficiency * 100.0) as u32
    );
    println!(
        "{:<10} 3 pipelines (RGP, RCP, RRPP), {}-entry MAQ, {}-entry TLB, {}-entry CT$",
        "RMC", c.rmc.maq_entries, c.rmc.tlb_entries, c.rmc.ct_cache_entries
    );
    println!(
        "{:<10} {:?} with {:.0}-ns inter-node delay, {} credits/lane",
        "Fabric",
        c.fabric.topology,
        c.fabric.hop_latency.as_ns_f64(),
        c.fabric.credits_per_lane
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_does_not_panic() {
        super::print();
    }
}
