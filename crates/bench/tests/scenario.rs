//! Scenario-harness coverage: spec serde round-trips, malformed-spec
//! rejection, report schema validity, baseline comparison, and the
//! determinism contract (same spec + seed => byte-identical `BENCH.json`
//! modulo wall-clock fields).

use sonuma_bench::json::Json;
use sonuma_bench::scenario::{
    canned_specs, check_baseline, equivalence_diff, rack512_spec, report, run_spec, run_specs,
    smoke_specs, validate_report, BackendKind, BackendSel, ScenarioSpec, SpecError, TopologySpec,
    WorkloadKind, REPORT_SCHEMA,
};

fn tiny_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "tiny".into(),
        nodes: 3,
        backend: BackendSel::All,
        workload: WorkloadKind::Mixed,
        read_fraction: 0.5,
        op_bytes: 128,
        ops_per_node: 24,
        window: 6,
        seed: 5,
        ..ScenarioSpec::default()
    }
}

#[test]
fn toml_roundtrip_preserves_every_field() {
    for spec in canned_specs() {
        let text = spec.to_toml();
        let back = ScenarioSpec::from_toml(&text).expect("canned specs parse");
        assert_eq!(back, spec, "round-trip drifted for {}", spec.name);
    }
    // A torus3d spec with every non-default field set.
    let spec = ScenarioSpec {
        name: "full".into(),
        nodes: 27,
        topology: TopologySpec::Torus3d(3, 3, 3),
        platform: sonuma_bench::scenario::PlatformSpec::Dev,
        backend: BackendSel::One(BackendKind::Tcp),
        workload: WorkloadKind::Mixed,
        read_fraction: 0.25,
        op_bytes: 192,
        ops_per_node: 7,
        window: 3,
        segment_bytes: 1 << 16,
        seed: 1234567,
        threads: 3,
        qp_entries: 32,
        speculate_epochs: 3,
        tenancy: Some(sonuma_bench::scenario::TenancySpec {
            tenants: 54,
            scheduler: sonuma_core::SchedPolicy::StrictPriority,
            weights: sonuma_bench::scenario::WeightMode::Tiered,
        }),
        traffic: Some(sonuma_bench::scenario::TrafficSpec {
            arrival: sonuma_bench::trafficgen::ArrivalKind::Bursty,
            rate_per_tenant: 12_500.0,
            duration_us: 18.0,
            zipf_addr: 0.75,
            zipf_dst: 0.5,
            burst: 3,
        }),
        faults: Some(sonuma_bench::scenario::FaultSpec {
            seed: 99,
            degraded_links: 2,
            drop_prob: 0.125,
            corrupt_prob: 0.0625,
            derate: 2.5,
            credit_loss: 3,
            killed_links: 1,
            kill_at_us: 7.5,
            revive_at_us: 11.25,
            crashed_nodes: 2,
            crash_at_us: 4.5,
            restart_at_us: 9.0,
            timeout_us: 6.0,
            max_retries: 5,
        }),
        trace: Some(sonuma_bench::scenario::TraceSpec {
            interval_us: 2.5,
            link_capacity: 4096,
            node_capacity: 2048,
            event_capacity: 512,
        }),
        kv: Some(sonuma_bench::scenario::KvSpec {
            keys: 64,
            value_min: 128,
            value_max: 512,
            zipf_key: 1.1,
            get_fraction: 0.75,
            repeat_prob: 0.5,
            seed: 77,
        }),
    };
    assert_eq!(ScenarioSpec::from_toml(&spec.to_toml()).unwrap(), spec);
}

#[test]
fn malformed_specs_are_rejected() {
    // Zero nodes.
    let zero_nodes = "name = \"x\"\nnodes = 0\n";
    assert!(matches!(
        ScenarioSpec::from_toml(zero_nodes),
        Err(SpecError::Invalid(_))
    ));
    // One node cannot issue remote operations either.
    assert!(ScenarioSpec::from_toml("name = \"x\"\nnodes = 1\n").is_err());
    // Unknown backend.
    let bad_backend = "name = \"x\"\nnodes = 2\nbackend = \"quic\"\n";
    assert!(matches!(
        ScenarioSpec::from_toml(bad_backend),
        Err(SpecError::Parse(3, _))
    ));
    // Unknown key.
    assert!(ScenarioSpec::from_toml("name = \"x\"\nnodes = 2\nnodez = 3\n").is_err());
    // Topology that does not arrange the node count.
    let bad_torus = "name = \"x\"\nnodes = 9\ntopology = \"torus2d:4x4\"\n";
    assert!(matches!(
        ScenarioSpec::from_toml(bad_torus),
        Err(SpecError::Invalid(_))
    ));
    // Non-line-multiple op size.
    assert!(ScenarioSpec::from_toml("name = \"x\"\nnodes = 2\nop_bytes = 100\n").is_err());
    // Window beyond the queue depth.
    assert!(ScenarioSpec::from_toml("name = \"x\"\nnodes = 2\nwindow = 65\n").is_err());
    // Missing required keys.
    assert!(ScenarioSpec::from_toml("nodes = 2\n").is_err());
    assert!(ScenarioSpec::from_toml("name = \"x\"\n").is_err());
    // Syntax errors carry line numbers.
    assert!(matches!(
        ScenarioSpec::from_toml("name = \"x\"\nnodes 2\n"),
        Err(SpecError::Parse(2, _))
    ));
    // Errors render.
    let err = ScenarioSpec::from_toml(zero_nodes).unwrap_err();
    assert!(err.to_string().contains("nodes"));
}

#[test]
fn comments_and_spacing_are_tolerated() {
    let text = "\n# leading comment\n  name = \"spaced\"   \n\nnodes = 2  # trailing\n";
    let spec = ScenarioSpec::from_toml(text).unwrap();
    assert_eq!(spec.name, "spaced");
    assert_eq!(spec.nodes, 2);
}

#[test]
fn report_is_schema_valid_and_parses_back() {
    let results = run_specs(&[tiny_spec()]);
    let doc = report(&results);
    validate_report(&doc).expect("generated report must satisfy its own schema");
    let text = doc.render();
    let back = Json::parse(&text).expect("rendered report parses");
    validate_report(&back).expect("parsed report still valid");
    // Corruptions are caught.
    assert!(validate_report(&Json::parse("{}").unwrap()).is_err());
    let wrong = text.replace(REPORT_SCHEMA, "sonuma-bench.scenario/v0");
    assert!(validate_report(&Json::parse(&wrong).unwrap()).is_err());
}

#[test]
fn same_spec_and_seed_is_byte_identical_modulo_wall_clock() {
    let specs = vec![tiny_spec()];
    let a = report(&run_specs(&specs));
    let b = report(&run_specs(&specs));
    assert_eq!(
        equivalence_diff(&a, &b),
        Vec::<String>::new(),
        "two runs of the same spec+seed must render identically"
    );
    // A different seed must actually change the uniform workload's stream.
    let mut reseeded = tiny_spec();
    reseeded.seed += 1;
    reseeded.workload = WorkloadKind::UniformRead;
    let mut original = tiny_spec();
    original.workload = WorkloadKind::UniformRead;
    let a = report(&run_specs(&[original]));
    let c = report(&run_specs(&[reseeded]));
    assert!(!equivalence_diff(&a, &c).is_empty(), "seed must matter");
}

#[test]
fn sonuma_runs_expose_pipeline_counters() {
    let mut spec = tiny_spec();
    spec.backend = BackendSel::One(BackendKind::Sonuma);
    spec.workload = WorkloadKind::NeighborRead;
    let result = run_spec(&spec);
    assert_eq!(result.runs.len(), 1);
    let run = &result.runs[0];
    assert_eq!(run.ops, spec.ops_per_node * spec.nodes as u64);
    assert_eq!(run.errors, 0);
    assert_eq!(run.per_node.len(), spec.nodes);
    let total = run.pipeline_total.expect("soNUMA attaches pipeline stats");
    assert_eq!(total.rgp_requests, run.ops);
    assert_eq!(total.rcp_completions, run.ops);
    assert!(run.events > 0, "typed engine events must be counted");
    assert!(run.sim_time.as_ps() > 0);
}

#[test]
fn baseline_check_flags_regressions_and_missing_runs() {
    let results = run_specs(&[tiny_spec()]);
    let doc = report(&results);
    // Identical reports pass at any budget.
    let check = check_baseline(&doc, &doc, 0.20);
    assert!(check.failures.is_empty(), "{:?}", check.failures);
    // A baseline that was 10x faster (10x the rate, a tenth of the wall
    // time) fails the 20% budget via the aggregate gate — these tiny runs
    // sit below the per-pair MIN_GATED_EVENTS floor.
    fn speed_up(value: &mut Json, factor: f64) {
        match value {
            Json::Obj(members) => {
                for (key, v) in members.iter_mut() {
                    match (key.as_str(), &mut *v) {
                        ("wall_events_per_sec", Json::Num(x)) => *x *= factor,
                        ("wall_secs", Json::Num(x)) => *x /= factor,
                        _ => speed_up(v, factor),
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(|v| speed_up(v, factor)),
            _ => {}
        }
    }
    let mut inflated = doc.clone();
    speed_up(&mut inflated, 10.0);
    let check = check_baseline(&doc, &inflated, 0.20);
    assert!(!check.failures.is_empty(), "10x slower must regress");
    // Baseline entries missing from the run are failures too.
    let mut other = tiny_spec();
    other.name = "renamed".into();
    let renamed = report(&run_specs(&[other]));
    let check = check_baseline(&renamed, &doc, 0.20);
    assert!(check.failures.iter().any(|f| f.contains("missing in run")));
}

#[test]
fn packet_rate_gate_fails_when_current_rate_collapses() {
    // A fabric-backed pair above the event floor must fail — not skip —
    // the packets/sec gate if the current run's wall_packets_per_sec
    // drops to zero (e.g. the fabric summary is lost). Hand-crafted
    // reports keep the test instant and the numbers explicit.
    let doc_with_pps = |pps: f64| {
        Json::parse(&format!(
            r#"{{"schema": "{REPORT_SCHEMA}",
               "scenarios": [{{
                 "spec": {{"name": "rack", "nodes": 512, "seed": 1}},
                 "runs": [{{
                   "backend": "soNUMA", "sim_us": 10.0,
                   "events": 200000, "wall_secs": 0.5,
                   "wall_events_per_sec": 400000.0,
                   "wall_packets_per_sec": {pps}
                 }}]
               }}]}}"#
        ))
        .expect("handwritten report parses")
    };
    let baseline = doc_with_pps(300000.0);
    // Zeroed current rate: must fail on packets/sec specifically.
    let check = check_baseline(&doc_with_pps(0.0), &baseline, 0.20);
    assert!(
        check.failures.iter().any(|f| f.contains("packets/sec")),
        "zeroed packet rate must fail the gate: {:?}",
        check.failures
    );
    // A >20% drop fails; a small drop passes.
    let check = check_baseline(&doc_with_pps(200000.0), &baseline, 0.20);
    assert!(check.failures.iter().any(|f| f.contains("packets/sec")));
    let check = check_baseline(&doc_with_pps(290000.0), &baseline, 0.20);
    assert!(check.failures.is_empty(), "{:?}", check.failures);
}

#[test]
fn baseline_check_normalizes_by_host_calibration() {
    use sonuma_bench::scenario::report_calibrated;
    let results = run_specs(&[tiny_spec()]);
    // Same results, "recorded" on hosts of different speeds. Halving
    // wall_secs doubles the implied throughput of the baseline host.
    fn scale_wall_secs(value: &mut Json, factor: f64) {
        match value {
            Json::Obj(members) => {
                for (key, v) in members.iter_mut() {
                    match (key.as_str(), &mut *v) {
                        ("wall_secs", Json::Num(x)) => *x *= factor,
                        ("wall_events_per_sec", Json::Num(x)) => *x /= factor,
                        _ => scale_wall_secs(v, factor),
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(|v| scale_wall_secs(v, factor)),
            _ => {}
        }
    }
    let current = report_calibrated(&results, 1_000_000.0);
    // A 2x-faster baseline host: twice the throughput AND twice the
    // calibration. Absolute comparison would flag a 50% regression;
    // normalization must pass it.
    let mut fast_host = report_calibrated(&results, 2_000_000.0);
    scale_wall_secs(&mut fast_host, 0.5);
    let check = check_baseline(&current, &fast_host, 0.20);
    assert!(
        check.failures.is_empty(),
        "hardware speed must not gate: {:?}",
        check.failures
    );
    // Same wall numbers but claiming a 2x-slower host: the code "ran 2x
    // faster than its host" in the baseline, so the current run is a real
    // 50% normalized regression and must fail.
    let slow_host_same_speed = report_calibrated(&results, 500_000.0);
    let check = check_baseline(&current, &slow_host_same_speed, 0.20);
    assert!(
        !check.failures.is_empty(),
        "normalized regression must fail"
    );
    // Without calibration on one side, the gate falls back to absolute
    // rates and says so.
    let uncalibrated = report(&results);
    let check = check_baseline(&uncalibrated, &current, 0.20);
    assert!(check.notes.iter().any(|n| n.contains("no calibration")));
}

#[test]
fn smoke_and_rack_specs_validate() {
    for spec in smoke_specs() {
        spec.validate().expect("smoke specs must be valid");
    }
    let rack = rack512_spec();
    rack.validate().expect("rack512 must be valid");
    assert_eq!(rack.nodes, 512);
}

#[test]
fn shipped_spec_files_parse() {
    let specs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench/specs");
    let mut parsed = 0;
    let mut in_sync = 0;
    for entry in std::fs::read_dir(specs_dir).expect("bench/specs exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let spec =
            ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Shipped files must stay in sync with the canned spec of the
        // same name the acceptance runs use — matched by name against
        // the full canned list, so a new canned spec plus a new file
        // under bench/specs is covered with no test edit.
        if let Some(canned) = sonuma_bench::scenario::canned_specs()
            .into_iter()
            .find(|c| c.name == spec.name)
        {
            assert_eq!(
                spec,
                canned,
                "{} drifted from its canned spec",
                path.display()
            );
            in_sync += 1;
        }
        parsed += 1;
    }
    assert!(parsed >= 10, "expected shipped spec files, found {parsed}");
    assert!(
        in_sync >= 10,
        "expected shipped files matching canned specs, found {in_sync}"
    );
}

#[test]
fn threaded_report_is_equivalent_to_serial() {
    // The report-level version of the machine crate's bit-equivalence
    // tests: a sharded run's BENCH.json must match the serial run's
    // outside wall-clock and shard-metadata fields — exactly what the CI
    // parallel-equivalence step asserts on the rack scenarios.
    let mut serial = tiny_spec();
    serial.backend = BackendSel::One(BackendKind::Sonuma);
    let mut threaded = serial.clone();
    threaded.threads = 3;
    let a = report(&run_specs(&[serial]));
    let b = report(&run_specs(&[threaded]));
    assert_eq!(equivalence_diff(&a, &b), Vec::<String>::new());
    // The differ is not vacuous: a changed simulated field must surface.
    let mut tweaked = b.clone();
    fn bump_ops(value: &mut Json) {
        match value {
            Json::Obj(members) => {
                for (key, v) in members.iter_mut() {
                    match (key.as_str(), &mut *v) {
                        ("ops", Json::Num(x)) => *x += 1.0,
                        _ => bump_ops(v),
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(bump_ops),
            _ => {}
        }
    }
    bump_ops(&mut tweaked);
    assert!(!equivalence_diff(&a, &tweaked).is_empty());
}

#[test]
fn speculative_report_is_equivalent_to_conservative() {
    // Speculation is a pure wall-clock knob, like the thread count: a
    // sharded run with clock bets enabled must produce a BENCH.json
    // matching the conservative run's outside wall/shard fields — the
    // report-level form of the observational-invisibility contract the
    // fault-matrix CI lane asserts with `diff-runs`.
    let mut conservative = tiny_spec();
    conservative.backend = BackendSel::One(BackendKind::Sonuma);
    conservative.threads = 3;
    let mut speculative = conservative.clone();
    speculative.speculate_epochs = 3;
    let a = report(&run_specs(&[conservative]));
    let b = report(&run_specs(&[speculative]));
    assert_eq!(equivalence_diff(&a, &b), Vec::<String>::new());
}

#[test]
fn fabric_link_sections_are_deterministic_under_dense_layout() {
    // A multi-hop torus with shared intermediate links is the layout most
    // sensitive to link-state ordering: run the same spec twice and
    // require the rendered `fabric` sections (per-link bytes/packets/
    // stalls, hottest-first) to be byte-identical.
    let spec = ScenarioSpec {
        name: "torus-det".into(),
        nodes: 16,
        topology: TopologySpec::Torus2d(4, 4),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::UniformRead,
        op_bytes: 256,
        ops_per_node: 32,
        window: 8,
        seed: 21,
        ..ScenarioSpec::default()
    };
    let render_fabric = || {
        let result = run_spec(&spec);
        let run = &result.runs[0];
        let fabric = run.fabric.as_ref().expect("soNUMA attaches fabric stats");
        assert!(fabric.links_observed > 0);
        let text = report(std::slice::from_ref(&result)).render();
        let start = text.find("\"fabric\"").expect("fabric section rendered");
        let end = text[start..]
            .find("\"pipeline_total\"")
            .expect("fabric precedes pipeline_total");
        text[start..start + end].to_string()
    };
    let a = render_fabric();
    let b = render_fabric();
    assert!(a.contains("hot_links"));
    assert_eq!(a, b, "fabric.links section must be byte-stable across runs");
}

#[test]
fn mid_scale_neighbor_scenario_completes() {
    // A 64-node slice of the rack512 shape keeps test time bounded while
    // exercising the same code path the 512-node acceptance run uses.
    let spec = ScenarioSpec {
        name: "rack64".into(),
        nodes: 64,
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::NeighborRead,
        op_bytes: 512,
        ops_per_node: 8,
        window: 4,
        segment_bytes: 1 << 18,
        seed: 99,
        ..ScenarioSpec::default()
    };
    let result = run_spec(&spec);
    let run = &result.runs[0];
    assert_eq!(run.ops, 64 * 8);
    assert_eq!(run.errors, 0);
    assert_eq!(run.per_node.len(), 64);
}
