//! Fault-injection coverage at the scenario-harness level: the `[faults]`
//! spec section round-trips through TOML, a zero-count section is
//! indistinguishable from no section (the fault-free byte-identity
//! contract), faulty runs report a gateable `faults` section, and the
//! fault baseline gate catches each class of regression it exists for.

use proptest::prelude::*;

use sonuma_bench::json::Json;
use sonuma_bench::scenario::{
    check_fault_baseline, equivalence_diff, rack1024_nodekill_spec, rack512_linkflap_spec, report,
    run_specs, slim_report, validate_report, BackendKind, BackendSel, FaultSpec, ScenarioSpec,
    TenancySpec, TopologySpec, TrafficSpec, WorkloadKind,
};

/// A fast open-loop spec on the soNUMA backend whose run spans its fault
/// window: one link killed at 5 us (reviving at 15 us) and one degraded,
/// over a 30 us horizon.
fn faulty_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "tiny-faults".into(),
        nodes: 8,
        topology: TopologySpec::Torus2d(4, 2),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::Mixed,
        read_fraction: 0.8,
        op_bytes: 64,
        seed: 31,
        tenancy: Some(TenancySpec {
            tenants: 8,
            ..TenancySpec::default()
        }),
        traffic: Some(TrafficSpec {
            rate_per_tenant: 2_000_000.0,
            duration_us: 30.0,
            zipf_addr: 0.5,
            ..TrafficSpec::default()
        }),
        faults: Some(FaultSpec {
            seed: 17,
            degraded_links: 2,
            drop_prob: 0.2,
            corrupt_prob: 0.1,
            killed_links: 1,
            kill_at_us: 5.0,
            revive_at_us: 15.0,
            ..FaultSpec::default()
        }),
        ..ScenarioSpec::default()
    }
}

#[test]
fn zero_count_fault_section_is_invisible() {
    // A [faults] section that injects nothing must leave no trace: no
    // section in the rendered TOML, no plan installed, and a report
    // byte-identical (modulo wall clock) to a spec with no section at
    // all — the fault-free fast-path contract.
    let mut with_zeros = faulty_spec();
    with_zeros.faults = Some(FaultSpec::default());
    assert!(
        !with_zeros.to_toml().contains("[faults]"),
        "zero-count section must not render"
    );
    let mut without = faulty_spec();
    without.faults = None;
    assert_eq!(with_zeros.to_toml(), without.to_toml());
    let a = report(&run_specs(&[with_zeros]));
    let b = report(&run_specs(&[without]));
    assert_eq!(
        equivalence_diff(&a, &b),
        Vec::<String>::new(),
        "a zero-count [faults] section must not perturb the simulation"
    );
    // And no `faults` section appears in the report.
    assert!(!a.render().contains("\"faults\""));
}

#[test]
fn faulty_run_reports_injection_and_recovery() {
    let results = run_specs(&[faulty_spec()]);
    let doc = report(&results);
    validate_report(&doc).expect("faulty report satisfies the schema");
    let run = &results[0].runs[0];
    let f = run.faults.as_ref().expect("faults section attached");
    assert_eq!(f.links_killed, 1);
    assert_eq!(f.links_degraded, 2);
    assert_eq!(f.onset_us, Some(5.0));
    assert!(f.rerouted > 0, "the killed link must divert traffic: {f:?}");
    assert!(
        f.dropped > 0,
        "a 20% lossy link over 30 us must drop: {f:?}"
    );
    assert!(
        f.rgp_timeouts > 0 && f.rgp_retransmits > 0,
        "lost lines must trip the retransmission path: {f:?}"
    );
    assert!(f.goodput_fraction > 0.9, "goodput {}", f.goodput_fraction);
    // Reports stay partition-invariant under faults (the CI diff-runs
    // lane asserts the same at rack scale).
    let mut threaded = faulty_spec();
    threaded.threads = 4;
    let b = report(&run_specs(&[threaded]));
    assert_eq!(equivalence_diff(&doc, &b), Vec::<String>::new());
}

#[test]
fn fault_gate_catches_each_regression_class() {
    // Degradation-only plan: no onset, so `recovered` is structurally
    // true and the recovery/goodput/section gates all have a green
    // baseline to regress from.
    let mut spec = faulty_spec();
    let f = spec.faults.as_mut().expect("fault section present");
    f.killed_links = 0;
    let doc = report(&run_specs(&[spec]));
    // Self-comparison passes.
    let check = check_fault_baseline(&doc, &doc);
    assert!(check.failures.is_empty(), "{:?}", check.failures);

    fn patch(doc: &Json, key: &str, value: Json) -> Json {
        match doc {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(k, v)| {
                        if k == key {
                            (k.clone(), value.clone())
                        } else {
                            (k.clone(), patch(v, key, value.clone()))
                        }
                    })
                    .collect(),
            ),
            Json::Arr(items) => {
                Json::Arr(items.iter().map(|v| patch(v, key, value.clone())).collect())
            }
            other => other.clone(),
        }
    }
    // Lost recovery.
    let broken = patch(&doc, "recovered", Json::Bool(false));
    assert!(
        check_fault_baseline(&broken, &doc)
            .failures
            .iter()
            .any(|f| f.contains("recover")),
        "lost recovery must gate"
    );
    // Goodput collapse.
    let lossy = patch(&doc, "goodput_fraction", Json::Num(0.5));
    assert!(
        check_fault_baseline(&lossy, &doc)
            .failures
            .iter()
            .any(|f| f.contains("goodput")),
        "goodput collapse must gate"
    );
    // Dropped faults section entirely.
    fn strip_faults(doc: &Json) -> Json {
        match doc {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k != "faults")
                    .map(|(k, v)| (k.clone(), strip_faults(v)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(strip_faults).collect()),
            other => other.clone(),
        }
    }
    let silent = strip_faults(&doc);
    assert!(
        check_fault_baseline(&silent, &doc)
            .failures
            .iter()
            .any(|f| f.contains("faults section")),
        "silently disabled injection must gate"
    );
}

#[test]
fn slim_report_drops_only_per_node_detail() {
    let doc = report(&run_specs(&[faulty_spec()]));
    let full = doc.render();
    let slim = slim_report(&doc).render();
    assert!(full.contains("\"per_node\""));
    assert!(!slim.contains("\"per_node\""));
    assert!(slim.len() < full.len());
    // Everything the gates read survives the diet.
    for key in [
        "\"faults\"",
        "\"pipeline_total\"",
        "\"fabric\"",
        "\"events\"",
    ] {
        assert!(slim.contains(key), "{key} lost in slimming");
    }
    validate_report(&Json::parse(&slim).expect("slim parses")).expect("slim stays schema-valid");
}

#[test]
fn canned_fault_specs_validate_and_instantiate() {
    for spec in [rack512_linkflap_spec(), rack1024_nodekill_spec()] {
        spec.validate().expect("canned fault specs are valid");
        let f = spec.faults.expect("fault section present");
        let topology = match spec.topology {
            TopologySpec::Torus3d(x, y, z) => sonuma_fabric::Topology::torus3d(x, y, z),
            _ => panic!("fault racks are tori"),
        };
        let plan = f.instantiate(&topology).expect("non-empty plan");
        assert_eq!(
            plan.links.len(),
            f.degraded_links + f.killed_links,
            "every requested link fault lands on a distinct link"
        );
        assert_eq!(plan.nodes.len(), f.crashed_nodes);
        // Instantiation is a pure function of (spec, topology): the same
        // inputs must yield the same plan — this is what makes the fault
        // schedule identical on every shard of every partition.
        assert_eq!(f.instantiate(&topology), Some(plan));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any in-range `[faults]` section survives the TOML round trip
    /// exactly — seeds, probabilities, and timing knobs included.
    #[test]
    fn fault_spec_roundtrips_through_toml(
        seed in 0u64..u64::MAX,
        degraded in 1usize..16,
        drop_milli in 0u32..1000,
        corrupt_milli in 0u32..1000,
        derate_tenths in 10u32..640,
        credit_loss in 0usize..64,
        killed in 0usize..8,
        kill_at in 1u32..80,
        crashed in 0usize..4,
        crash_at in 1u32..40,
        timeout_us in 1u32..100,
        max_retries in 0u32..64,
    ) {
        let faults = FaultSpec {
            seed,
            degraded_links: degraded,
            drop_prob: drop_milli as f64 / 1000.0,
            corrupt_prob: corrupt_milli as f64 / 1000.0,
            derate: derate_tenths as f64 / 10.0,
            credit_loss,
            killed_links: killed,
            kill_at_us: kill_at as f64,
            revive_at_us: (kill_at + 10) as f64,
            crashed_nodes: crashed,
            crash_at_us: crash_at as f64,
            restart_at_us: (crash_at + 10) as f64,
            timeout_us: timeout_us as f64,
            max_retries,
        };
        let spec = ScenarioSpec {
            name: "prop-faults".into(),
            nodes: 8,
            topology: TopologySpec::Torus2d(4, 2),
            faults: Some(faults),
            ..ScenarioSpec::default()
        };
        spec.validate().expect("generated spec in range");
        let back = ScenarioSpec::from_toml(&spec.to_toml()).expect("round trip parses");
        prop_assert_eq!(back, spec);
    }
}
