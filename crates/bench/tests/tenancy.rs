//! Multi-tenant open-loop harness coverage: `[tenants]`/`[traffic]` spec
//! serde, fairness and SLO-class separation on reduced-scale clones of
//! the rack64 acceptance scenarios, report schema, and determinism.

use sonuma_bench::scenario::{
    equivalence_diff, rack64_tenants_spec, rack64_tenants_strict_spec, report, run_spec, run_specs,
    validate_report, BackendKind, BackendSel, ScenarioSpec, TenancySpec, TrafficSpec, WeightMode,
};
use sonuma_bench::trafficgen::{jain_index, ArrivalKind};
use sonuma_core::{SchedPolicy, SloClass};

/// A 16-node, 128-tenant slice of the rack64-tenants shape: same code
/// path, bounded debug-build runtime.
fn small_tenancy_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "tenancy-small".into(),
        nodes: 16,
        backend: BackendSel::One(BackendKind::Sonuma),
        read_fraction: 0.8,
        op_bytes: 64,
        segment_bytes: 1 << 16,
        seed: 31,
        tenancy: Some(TenancySpec {
            tenants: 128,
            scheduler: SchedPolicy::Wdrr,
            weights: WeightMode::Uniform,
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Poisson,
            rate_per_tenant: 150_000.0,
            duration_us: 100.0,
            zipf_addr: 0.9,
            zipf_dst: 0.4,
            burst: 8,
        }),
        ..ScenarioSpec::default()
    }
}

#[test]
fn tenancy_sections_roundtrip_through_toml() {
    for spec in [
        small_tenancy_spec(),
        rack64_tenants_spec(),
        rack64_tenants_strict_spec(),
    ] {
        let text = spec.to_toml();
        assert!(text.contains("[tenants]") && text.contains("[traffic]"));
        let back = ScenarioSpec::from_toml(&text).expect("tenancy specs parse");
        assert_eq!(back, spec, "round-trip drifted for {}", spec.name);
    }
}

#[test]
fn malformed_tenancy_specs_are_rejected() {
    let base = "name = \"x\"\nnodes = 2\n";
    // A [tenants] section without [traffic] (and vice versa).
    assert!(ScenarioSpec::from_toml(&format!("{base}[tenants]\ncount = 4\n")).is_err());
    assert!(
        ScenarioSpec::from_toml(&format!("{base}[traffic]\nrate_per_tenant = 1000\n")).is_err()
    );
    // Unknown section / key / scheduler.
    assert!(ScenarioSpec::from_toml(&format!("{base}[quotas]\nx = 1\n")).is_err());
    assert!(ScenarioSpec::from_toml(&format!(
        "{base}[tenants]\ncount = 4\nbogus = 1\n[traffic]\n"
    ))
    .is_err());
    assert!(ScenarioSpec::from_toml(&format!(
        "{base}[tenants]\ncount = 4\nscheduler = \"fifo\"\n[traffic]\n"
    ))
    .is_err());
    // Fewer tenants than nodes.
    assert!(ScenarioSpec::from_toml(&format!(
        "{base}[tenants]\ncount = 1\n[traffic]\nrate_per_tenant = 1000\n"
    ))
    .is_err());
    // Out-of-range traffic parameters.
    for bad in [
        "rate_per_tenant = 0",
        "duration_us = 0",
        "zipf_addr = 9",
        "burst = 0",
    ] {
        let text = format!("{base}[tenants]\ncount = 4\n[traffic]\n{bad}\n");
        assert!(ScenarioSpec::from_toml(&text).is_err(), "accepted: {bad}");
    }
}

#[test]
fn wdrr_uniform_weights_are_fair_and_deterministic() {
    let spec = small_tenancy_spec();
    let result = run_spec(&spec);
    let run = &result.runs[0];
    assert_eq!(run.tenants.len(), 128);
    assert_eq!(run.offered_ops, run.tenants.iter().map(|t| t.offered).sum());
    assert!(run.offered_ops > 0);
    assert_eq!(
        run.ops, run.offered_ops,
        "a feasible offered load must be fully delivered"
    );
    let delivered: Vec<f64> = run
        .tenants
        .iter()
        .filter(|t| t.offered > 0)
        .map(|t| t.ops as f64 / t.offered as f64)
        .collect();
    let jain = jain_index(&delivered);
    assert!(
        jain >= 0.95,
        "WDRR with uniform weights must be fair: jain = {jain}"
    );
    // Tenancy runs carry fabric + pipeline observability.
    let fabric = run.fabric.as_ref().expect("soNUMA attaches fabric stats");
    assert!(fabric.bytes > 0 && fabric.packets > 0);
    assert!(fabric.links_observed > 0);
    assert!(!fabric.hot_links.is_empty());
    assert!(
        fabric
            .hot_links
            .windows(2)
            .all(|w| w[0].bytes >= w[1].bytes),
        "hot links are sorted by bytes"
    );
    let total = run.pipeline_total.expect("pipeline stats attached");
    assert_eq!(total.rcp_completions, run.ops);

    // Determinism: the full report is identical modulo wall/shard fields.
    let a = report(&run_specs(std::slice::from_ref(&spec)));
    let b = report(&run_specs(&[spec]));
    assert_eq!(equivalence_diff(&a, &b), Vec::<String>::new());
}

#[test]
fn strict_priority_separates_slo_classes() {
    let mut spec = small_tenancy_spec();
    spec.name = "tenancy-small-strict".into();
    spec.tenancy = Some(TenancySpec {
        tenants: 128,
        scheduler: SchedPolicy::StrictPriority,
        weights: WeightMode::Tiered,
    });
    spec.traffic = Some(TrafficSpec {
        arrival: ArrivalKind::Bursty,
        rate_per_tenant: 150_000.0,
        duration_us: 100.0,
        zipf_addr: 0.9,
        zipf_dst: 0.4,
        burst: 16,
    });
    let result = run_spec(&spec);
    let run = &result.runs[0];
    let p99_of = |class: SloClass| {
        let mut hist = sonuma_sim::stats::LatencyHistogram::new();
        for t in run.tenants.iter().filter(|t| t.class == class) {
            hist.merge_from(&t.hist);
        }
        assert!(hist.count() > 0, "class {class:?} saw traffic");
        hist.percentile(0.99)
    };
    let (gold, bronze) = (p99_of(SloClass::Gold), p99_of(SloClass::Bronze));
    assert!(
        gold < bronze,
        "strict priority must separate classes: gold p99 {} ns, bronze p99 {} ns",
        gold.as_ns_f64(),
        bronze.as_ns_f64()
    );
    // Starvation pressure is observable while gold holds the pipeline.
    let total = run.pipeline_total.expect("pipeline stats attached");
    assert!(total.rgp_sched_skips > 0, "skips counter must fire");
    // Work conserving: nothing dropped even for bronze.
    assert_eq!(run.ops, run.offered_ops);
}

#[test]
fn ops_conserved_across_schedulers_on_the_same_seed() {
    let totals: Vec<(u64, u64)> = [
        SchedPolicy::RoundRobin,
        SchedPolicy::Wdrr,
        SchedPolicy::StrictPriority,
    ]
    .into_iter()
    .map(|policy| {
        let mut spec = small_tenancy_spec();
        spec.tenancy.as_mut().unwrap().scheduler = policy;
        let run = &run_spec(&spec).runs[0];
        (run.offered_ops, run.ops)
    })
    .collect();
    // The arrival streams are seed-determined, so offered loads agree
    // exactly; every policy must deliver all of them.
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[0], totals[2]);
    assert_eq!(totals[0].0, totals[0].1);
}

#[test]
fn tenancy_reports_validate_and_expose_per_tenant_json() {
    let mut spec = small_tenancy_spec();
    spec.tenancy.as_mut().unwrap().tenants = 32;
    spec.traffic.as_mut().unwrap().duration_us = 30.0;
    let doc = report(&run_specs(&[spec]));
    validate_report(&doc).expect("tenancy report satisfies the schema");
    let run = &doc.get("scenarios").and_then(|s| s.as_arr()).unwrap()[0]
        .get("runs")
        .and_then(|r| r.as_arr())
        .unwrap()[0];
    let pt = run.get("per_tenant").expect("per_tenant section present");
    assert_eq!(pt.u64_of("tenants"), Some(32));
    let jain = pt.f64_of("jain_fairness").unwrap();
    assert!((0.0..=1.0).contains(&jain));
    let detail = pt.get("detail").and_then(|d| d.as_arr()).unwrap();
    assert_eq!(detail.len(), 32);
    for row in detail {
        for key in [
            "tenant",
            "node",
            "weight",
            "offered_ops",
            "ops",
            "lat_p999_ns",
        ] {
            assert!(row.get(key).is_some(), "tenant row missing {key}");
        }
    }
    assert!(run.get("fabric").is_some(), "fabric section present");
    // The modeled baselines also report per-tenant outcomes (shared
    // queue, no QoS) so cross-transport comparisons stay apples-to-apples.
    let mut rdma = small_tenancy_spec();
    rdma.name = "tenancy-rdma".into();
    rdma.backend = BackendSel::One(BackendKind::Rdma);
    rdma.tenancy.as_mut().unwrap().tenants = 32;
    rdma.traffic.as_mut().unwrap().duration_us = 30.0;
    let run = &run_spec(&rdma).runs[0];
    assert_eq!(run.tenants.len(), 32);
    assert!(run.fabric.is_none(), "modeled backends have no fabric");
}
