//! Flight-recorder coverage at the scenario-harness level: the `[trace]`
//! spec section round-trips through TOML, a zero-interval section is
//! indistinguishable from no section (the tracing-off byte-identity
//! contract), traced runs report a schema-valid `trace` section and emit
//! a non-empty JSON-lines trace, the trace bytes are identical across
//! `--threads`, and every checked-in spec under `bench/specs/` parses.

use std::fs;
use std::path::PathBuf;

use sonuma_bench::json::Json;
use sonuma_bench::scenario::{
    equivalence_diff, report, run_spec_once, run_specs, validate_report, BackendKind, BackendSel,
    FaultSpec, ScenarioSpec, TenancySpec, TopologySpec, TraceSpec, TrafficSpec, WorkloadKind,
};

/// A fast open-loop spec on the soNUMA backend with a link kill mid-run,
/// sampled at 2 us: small enough for a debug-build test, busy enough to
/// produce link, node, tenant, and fault records.
fn traced_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "tiny-trace".into(),
        nodes: 8,
        topology: TopologySpec::Torus2d(4, 2),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::Mixed,
        read_fraction: 0.8,
        op_bytes: 64,
        seed: 31,
        tenancy: Some(TenancySpec {
            tenants: 8,
            ..TenancySpec::default()
        }),
        traffic: Some(TrafficSpec {
            rate_per_tenant: 2_000_000.0,
            duration_us: 30.0,
            zipf_addr: 0.5,
            ..TrafficSpec::default()
        }),
        faults: Some(FaultSpec {
            seed: 17,
            killed_links: 1,
            kill_at_us: 5.0,
            revive_at_us: 15.0,
            ..FaultSpec::default()
        }),
        trace: Some(TraceSpec {
            interval_us: 2.0,
            ..TraceSpec::default()
        }),
        ..ScenarioSpec::default()
    }
}

#[test]
fn zero_interval_trace_section_is_invisible() {
    // An `interval_us = 0` [trace] section must leave no trace of its
    // own: nothing rendered, nothing armed, and a report byte-identical
    // (modulo wall clock) to a spec with no section at all.
    let mut with_zero = traced_spec();
    with_zero.trace = Some(TraceSpec {
        interval_us: 0.0,
        ..TraceSpec::default()
    });
    assert!(
        !with_zero.to_toml().contains("[trace]"),
        "zero-interval section must not render"
    );
    let mut without = traced_spec();
    without.trace = None;
    assert_eq!(with_zero.to_toml(), without.to_toml());
    let a = report(&run_specs(&[with_zero]));
    let b = report(&run_specs(&[without]));
    assert_eq!(
        equivalence_diff(&a, &b),
        Vec::<String>::new(),
        "a zero-interval [trace] section must not perturb the simulation"
    );
    assert!(!a.render().contains("\"trace\""));
}

#[test]
fn traced_run_reports_samples_and_emits_a_trace() {
    let results = run_specs(&[traced_spec()]);
    let doc = report(&results);
    validate_report(&doc).expect("traced report satisfies the schema");
    let run = &results[0].runs[0];
    let t = run.trace.as_ref().expect("trace section attached");
    assert!(
        t.summary.ticks > 0,
        "no sampling rounds ran: {:?}",
        t.summary
    );
    assert!(t.summary.link_samples > 0, "no link activity recorded");
    assert!(t.summary.node_samples > 0, "no pipeline activity recorded");
    assert!(
        t.summary.fault_events >= 2,
        "the kill and revive transitions must be recorded: {:?}",
        t.summary
    );
    assert!(t.tenant_samples > 0, "no tenant windows recorded");
    let mut lines = t.text.lines();
    let header = lines.next().expect("trace has a header line");
    assert!(header.contains("\"schema\":\"sonuma-trace/v1\""));
    assert!(header.contains("\"scenario\":\"tiny-trace\""));
    assert!(lines.clone().any(|l| l.contains("\"rec\":\"link\"")));
    assert!(lines.clone().any(|l| l.contains("\"rec\":\"node\"")));
    assert!(lines.clone().any(|l| l.contains("\"rec\":\"tenant\"")));
    assert!(lines.any(|l| l.contains("\"kind\":\"link_kill\"")));
    // Timestamps are monotonically non-decreasing: the export merge
    // sorted by (t, rank).
    let mut last = 0u64;
    for line in t.text.lines().skip(1) {
        let t_ps: u64 = line
            .strip_prefix("{\"t_ps\":")
            .and_then(|r| r.split(',').next())
            .and_then(|n| n.parse().ok())
            .expect("every record leads with t_ps");
        assert!(t_ps >= last, "out-of-order record: {line}");
        last = t_ps;
    }
    // The untraced metrics are unperturbed by the armed recorder.
    let mut untraced = traced_spec();
    untraced.trace = None;
    let plain = report(&run_specs(&[untraced]));
    assert_eq!(
        equivalence_diff(&doc, &plain),
        Vec::<String>::new(),
        "arming the recorder must not change any simulated metric"
    );
}

#[test]
fn trace_bytes_are_identical_across_threads() {
    // The satellite determinism contract, at test scale: the CI fault
    // lane `cmp`s the same property on the full rack512-linkflap run.
    let serial = run_spec_once(&traced_spec());
    let mut sharded_spec = traced_spec();
    sharded_spec.threads = 4;
    let sharded = run_spec_once(&sharded_spec);
    let a = &serial.runs[0].trace.as_ref().expect("serial trace").text;
    let b = &sharded.runs[0].trace.as_ref().expect("sharded trace").text;
    assert!(a.lines().count() > 1, "trace must carry records");
    assert_eq!(a, b, "trace bytes must not depend on the partition");
}

#[test]
fn trace_spec_roundtrips_through_toml() {
    let spec = ScenarioSpec {
        name: "trace-roundtrip".into(),
        nodes: 4,
        trace: Some(TraceSpec {
            interval_us: 2.5,
            link_capacity: 1 << 10,
            node_capacity: 1 << 9,
            event_capacity: 1 << 8,
        }),
        ..ScenarioSpec::default()
    };
    spec.validate().expect("spec in range");
    let toml = spec.to_toml();
    assert!(toml.contains("[trace]"));
    let back = ScenarioSpec::from_toml(&toml).expect("round trip parses");
    assert_eq!(back, spec);
    // A bare [trace] header arms the recorder at the default cadence.
    let bare = ScenarioSpec::from_toml("name = \"t\"\nnodes = 4\n\n[trace]\n")
        .expect("bare section parses");
    let t = bare.trace.expect("section present");
    assert!(!t.is_empty());
    assert_eq!(t, TraceSpec::default());
}

#[test]
fn every_checked_in_spec_parses_and_validates() {
    // The spec directory is part of the shipped interface; every file in
    // it must load (`example-torus.toml` was previously unexercised).
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench/specs");
    let mut seen = 0;
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("bench/specs exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("toml"),
            "stray non-spec file {}",
            path.display()
        );
        let text = fs::read_to_string(&path).expect("spec readable");
        let spec = ScenarioSpec::from_toml(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e:?}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{} does not validate: {e:?}", path.display()));
        assert!(!spec.name.is_empty());
        // Round trip: what we render parses back to the same spec.
        let back = ScenarioSpec::from_toml(&spec.to_toml()).expect("re-render parses");
        assert_eq!(back, spec, "{} round trip", path.display());
        seen += 1;
    }
    assert!(seen >= 8, "spec directory unexpectedly thin: {seen} files");
}

#[test]
fn report_schema_validation_covers_the_trace_section() {
    let doc = report(&run_specs(&[traced_spec()]));
    // Corrupting the trace section must fail validation.
    let broken = Json::parse(
        &doc.render()
            .replace("\"tenant_samples\"", "\"tenant_sample\""),
    )
    .expect("patched report parses");
    assert!(
        validate_report(&broken)
            .expect_err("missing tenant_samples must fail")
            .contains("tenant_samples"),
        "validation must name the missing key"
    );
}
