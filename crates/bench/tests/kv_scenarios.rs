//! KV-cache service coverage at the scenario-harness level: the `[kv]`
//! spec section round-trips through TOML, a zero-key section is
//! indistinguishable from no section, the directory plane places every
//! key inside the context segment, KV runs are deterministic across
//! repeats and thread counts with verified GET payloads, the Zipf
//! scenario separates its SLO classes, and the kv baseline gate catches
//! each class of regression it exists for.

use proptest::prelude::*;

use sonuma_bench::json::Json;
use sonuma_bench::scenario::{
    check_kv_baseline, equivalence_diff, rack1024_kv_zipf_spec, rack512_kv_spec, report, run_specs,
    validate_report, BackendKind, BackendSel, KvSpec, ScenarioSpec, TenancySpec, TopologySpec,
    TrafficSpec, WeightMode, WorkloadKind,
};
use sonuma_bench::trafficgen::ArrivalKind;
use sonuma_core::SchedPolicy;

/// A fast KV spec on the soNUMA backend: 8 nodes, 128 small values
/// (4–16 lines each), 16 open-loop tenants at a feasible rate.
fn tiny_kv_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "tiny-kv".into(),
        nodes: 8,
        topology: TopologySpec::Torus2d(4, 2),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::Mixed,
        read_fraction: 0.9,
        op_bytes: 256,
        segment_bytes: 1 << 16,
        seed: 41,
        tenancy: Some(TenancySpec {
            tenants: 16,
            ..TenancySpec::default()
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Poisson,
            rate_per_tenant: 500_000.0,
            duration_us: 20.0,
            ..TrafficSpec::default()
        }),
        kv: Some(KvSpec {
            keys: 128,
            value_min: 256,
            value_max: 1024,
            zipf_key: 0.99,
            get_fraction: 0.85,
            repeat_prob: 0.25,
            seed: 4100,
        }),
        ..ScenarioSpec::default()
    }
}

/// The Zipf scenario's shape at test scale: strict-priority tiered
/// tenants driving phase-aligned bursts of multi-line GETs over hot
/// keys — the configuration whose SLO rows must separate.
fn zipf_kv_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "tiny-kv-zipf".into(),
        nodes: 64,
        topology: TopologySpec::Torus3d(4, 4, 4),
        backend: BackendSel::One(BackendKind::Sonuma),
        workload: WorkloadKind::Mixed,
        read_fraction: 0.95,
        op_bytes: 4096,
        segment_bytes: 1 << 19,
        seed: 42,
        tenancy: Some(TenancySpec {
            tenants: 512,
            scheduler: SchedPolicy::StrictPriority,
            weights: WeightMode::Tiered,
        }),
        traffic: Some(TrafficSpec {
            arrival: ArrivalKind::Bursty,
            rate_per_tenant: 40_000.0,
            duration_us: 40.0,
            burst: 16,
            ..TrafficSpec::default()
        }),
        kv: Some(KvSpec {
            keys: 512,
            value_min: 1024,
            value_max: 4096,
            zipf_key: 1.2,
            get_fraction: 0.95,
            repeat_prob: 0.4,
            seed: 4200,
        }),
        ..ScenarioSpec::default()
    }
}

#[test]
fn zero_key_kv_section_is_invisible() {
    // A [kv] section with zero keys must leave no trace: no section in
    // the rendered TOML and a report byte-identical (modulo wall clock)
    // to a spec with no section at all — the v8-report compatibility
    // contract of schema v9.
    let mut with_zeros = tiny_kv_spec();
    with_zeros.kv = Some(KvSpec {
        keys: 0,
        ..KvSpec::default()
    });
    assert!(
        !with_zeros.to_toml().contains("[kv]"),
        "zero-key section must not render"
    );
    let mut without = tiny_kv_spec();
    without.kv = None;
    assert_eq!(with_zeros.to_toml(), without.to_toml());
    let a = report(&run_specs(&[with_zeros]));
    let b = report(&run_specs(&[without]));
    assert_eq!(
        equivalence_diff(&a, &b),
        Vec::<String>::new(),
        "a zero-key [kv] section must not perturb the simulation"
    );
    assert!(!a.render().contains("\"kv\""));
}

#[test]
fn kv_spec_validation_rejects_bad_shapes() {
    // [kv] without the open-loop sections it is driven by.
    let mut lonely = tiny_kv_spec();
    lonely.tenancy = None;
    lonely.traffic = None;
    assert!(lonely.validate().unwrap_err().to_string().contains("[kv]"));
    // Non-power-of-two and sub-line value sizes.
    for (min, max) in [(100, 1024), (256, 768), (32, 1024), (1024, 256)] {
        let mut bad = tiny_kv_spec();
        let kv = bad.kv.as_mut().unwrap();
        kv.value_min = min;
        kv.value_max = max;
        assert!(bad.validate().is_err(), "value range {min}..{max} accepted");
    }
    // A store that cannot fit the context segment is an error up front,
    // not a mid-run panic.
    let mut oversized = tiny_kv_spec();
    oversized.kv.as_mut().unwrap().keys = 4096;
    assert!(oversized
        .validate()
        .unwrap_err()
        .to_string()
        .contains("overflow the context segment"));
}

#[test]
fn directory_places_every_key_inside_the_segment() {
    for spec in [rack512_kv_spec(), rack1024_kv_zipf_spec(), tiny_kv_spec()] {
        let kv = spec.kv.as_ref().expect("kv section present");
        let dir = kv
            .directory(spec.nodes, spec.segment_bytes)
            .expect("canned KV specs fit their segments");
        assert_eq!(dir.keys(), kv.keys);
        for key in 0..dir.keys() {
            let p = dir.lookup(key);
            assert!(p.node < spec.nodes, "key {key} maps to node {}", p.node);
            assert!(p.len.is_power_of_two());
            assert!(p.len >= kv.value_min && p.len <= kv.value_max);
            assert!(
                p.offset + p.len <= spec.segment_bytes,
                "key {key} extends past the segment: {p:?}"
            );
        }
        assert!(
            dir.max_node_bytes() <= spec.segment_bytes,
            "{}: worst node overflows",
            spec.name
        );
    }
}

#[test]
fn kv_runs_are_deterministic_and_verified() {
    let results = run_specs(&[tiny_kv_spec()]);
    let doc = report(&results);
    validate_report(&doc).expect("kv report satisfies the schema");
    let run = &results[0].runs[0];
    let kv = run.kv.as_ref().expect("kv section attached");
    assert!(kv.gets > 0 && kv.puts > 0, "mixed GET/PUT traffic: {kv:?}");
    assert_eq!(kv.corrupt, 0, "every GET payload verifies");
    assert!(
        kv.get_lines >= kv.gets * (tiny_kv_spec().kv.unwrap().value_min / 64),
        "multi-line GETs must unroll into line bursts"
    );
    // Same spec, fresh run: byte-identical report.
    let again = report(&run_specs(&[tiny_kv_spec()]));
    assert_eq!(equivalence_diff(&doc, &again), Vec::<String>::new());
    // Same spec across thread counts: the determinism contract the CI
    // diff-runs step asserts at rack scale.
    let mut threaded = tiny_kv_spec();
    threaded.threads = 4;
    let b = report(&run_specs(&[threaded]));
    assert_eq!(equivalence_diff(&doc, &b), Vec::<String>::new());
    // And under speculative run-ahead.
    let mut spec = tiny_kv_spec();
    spec.speculate_epochs = 2;
    let c = report(&run_specs(&[spec]));
    assert_eq!(equivalence_diff(&doc, &c), Vec::<String>::new());
}

#[test]
fn zipf_scenario_separates_slo_classes() {
    let results = run_specs(&[zipf_kv_spec()]);
    let doc = report(&results);
    let kv = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .and_then(|s| s[0].get("runs"))
        .and_then(Json::as_arr)
        .and_then(|r| r[0].get("kv"))
        .cloned()
        .expect("kv section in report");
    let p99 = |class: &str| {
        kv.get("slo")
            .and_then(Json::as_arr)
            .and_then(|rows| {
                rows.iter()
                    .find(|r| r.str_of("class") == Some(class))
                    .and_then(|r| r.f64_of("lat_p99_ns"))
            })
            .unwrap_or_else(|| panic!("slo row for {class}"))
    };
    let (gold, bronze) = (p99("gold"), p99("bronze"));
    assert!(
        gold < bronze,
        "strict priority with tiered weights must keep gold p99 ({gold} ns) \
         below bronze p99 ({bronze} ns)"
    );
    assert_eq!(kv.f64_of("corrupt"), Some(0.0), "hot-key GETs still verify");
}

#[test]
fn kv_gate_catches_each_regression_class() {
    let doc = report(&run_specs(&[zipf_kv_spec()]));
    // Self-comparison passes.
    let check = check_kv_baseline(&doc, &doc);
    assert!(check.failures.is_empty(), "{:?}", check.failures);

    fn patch(doc: &Json, key: &str, value: Json) -> Json {
        match doc {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(k, v)| {
                        if k == key {
                            (k.clone(), value.clone())
                        } else {
                            (k.clone(), patch(v, key, value.clone()))
                        }
                    })
                    .collect(),
            ),
            Json::Arr(items) => {
                Json::Arr(items.iter().map(|v| patch(v, key, value.clone())).collect())
            }
            other => other.clone(),
        }
    }
    // Corrupted GET payloads.
    let torn = patch(&doc, "corrupt", Json::Num(3.0));
    assert!(
        check_kv_baseline(&torn, &doc)
            .failures
            .iter()
            .any(|f| f.contains("corrupt")),
        "corruption must gate"
    );
    // Achieved-throughput collapse.
    let starved = patch(&doc, "achieved_fraction", Json::Num(0.5));
    assert!(
        check_kv_baseline(&starved, &doc)
            .failures
            .iter()
            .any(|f| f.contains("achieved")),
        "throughput collapse must gate"
    );
    // Per-class GET tail blowup (far past the 25% + 1 us slack).
    let slow = patch(&doc, "get_p99_ns", Json::Num(1e9));
    assert!(
        check_kv_baseline(&slow, &doc)
            .failures
            .iter()
            .any(|f| f.contains("GET p99")),
        "class tail regression must gate"
    );
    // Broken SLO isolation: every class reporting the same p99 where the
    // baseline separates gold from bronze.
    let flat = patch(&doc, "lat_p99_ns", Json::Num(5e5));
    assert!(
        check_kv_baseline(&flat, &doc)
            .failures
            .iter()
            .any(|f| f.contains("isolation")),
        "flattened SLO rows must gate"
    );
    // Silently dropped kv section.
    fn strip_kv(doc: &Json) -> Json {
        match doc {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k != "kv")
                    .map(|(k, v)| (k.clone(), strip_kv(v)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(strip_kv).collect()),
            other => other.clone(),
        }
    }
    let silent = strip_kv(&doc);
    assert!(
        check_kv_baseline(&silent, &doc)
            .failures
            .iter()
            .any(|f| f.contains("kv section")),
        "silently disabled KV plane must gate"
    );
}

#[test]
fn kv_runs_cover_all_three_backends() {
    let mut spec = tiny_kv_spec();
    spec.backend = BackendSel::All;
    let results = run_specs(&[spec]);
    assert_eq!(results[0].runs.len(), 3);
    for run in &results[0].runs {
        let kv = run
            .kv
            .as_ref()
            .unwrap_or_else(|| panic!("backend {} lost its kv section", run.backend));
        assert_eq!(kv.corrupt, 0, "{}: GETs must verify", run.backend);
        assert!(kv.gets > 0, "{}: no GETs completed", run.backend);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any in-range `[kv]` section survives the TOML round trip exactly.
    #[test]
    fn kv_spec_roundtrips_through_toml(
        keys in 1u64..512,
        min_pow in 6u32..12,
        max_extra in 0u32..3,
        zipf_centi in 0u32..200,
        get_centi in 1u32..=100,
        repeat_centi in 0u32..100,
        seed in 0u64..u64::MAX,
    ) {
        let kv = KvSpec {
            keys,
            value_min: 1 << min_pow,
            value_max: 1 << (min_pow + max_extra),
            zipf_key: zipf_centi as f64 / 100.0,
            get_fraction: get_centi as f64 / 100.0,
            repeat_prob: repeat_centi as f64 / 100.0,
            seed,
        };
        let spec = ScenarioSpec {
            name: "prop-kv".into(),
            nodes: 8,
            topology: TopologySpec::Torus2d(4, 2),
            segment_bytes: 1 << 22,
            tenancy: Some(TenancySpec {
                tenants: 8,
                ..TenancySpec::default()
            }),
            traffic: Some(TrafficSpec::default()),
            kv: Some(kv),
            ..ScenarioSpec::default()
        };
        spec.validate().expect("generated spec in range");
        let back = ScenarioSpec::from_toml(&spec.to_toml()).expect("round trip parses");
        prop_assert_eq!(back, spec);
    }
}
