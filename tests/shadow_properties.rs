//! Property test of the whole stack: arbitrary sequences of one-sided
//! operations, executed through every layer (access library, RGP, fabric,
//! RRPP, coherence hierarchy, RCP), must leave remote memory exactly as a
//! trivial shadow model predicts.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma::core::{AppProcess, NodeApi, NodeId, Step, SystemBuilder, VAddr, Wake, DEFAULT_CTX};

/// One randomly generated operation against a peer's segment, expressed at
/// cache-line granularity (the architecture's unit).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write `lines` lines of `fill` at line index `at`.
    Write { at: u64, lines: u8, fill: u8 },
    /// Read `lines` lines at `at` and verify against the shadow.
    Read { at: u64, lines: u8 },
    /// Fetch-add `delta` on the word at line `at`.
    FetchAdd { at: u64, delta: u32 },
    /// Compare-and-swap at line `at` (expected taken from the shadow, so
    /// it always succeeds — failure paths are covered by unit tests).
    Swap { at: u64, to: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..48, 1u8..8, any::<u8>()).prop_map(|(at, lines, fill)| Op::Write { at, lines, fill }),
        (0u64..48, 1u8..8).prop_map(|(at, lines)| Op::Read { at, lines }),
        (0u64..56, any::<u32>()).prop_map(|(at, delta)| Op::FetchAdd { at, delta }),
        (0u64..56, any::<u64>()).prop_map(|(at, to)| Op::Swap { at, to }),
    ]
}

/// Executes the scripted ops one at a time, checking reads against the
/// shadow that the generator maintains on the side.
struct Scripted {
    qp: sonuma::core::QpId,
    peer: NodeId,
    ops: Vec<(Op, Vec<u8>)>, // (op, expected bytes for reads)
    cursor: usize,
    buf: VAddr,
    checked: Rc<RefCell<u32>>,
}

impl AppProcess for Scripted {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                self.buf = api.heap_alloc(8 * 64).unwrap();
            }
            Wake::CqReady(comps) => {
                assert_eq!(comps.len(), 1);
                assert!(comps[0].status.is_ok());
                // Verify the completed op's effect on the local buffer.
                let (op, expect) = &self.ops[self.cursor];
                match op {
                    Op::Read { lines, .. } => {
                        let mut got = vec![0u8; *lines as usize * 64];
                        api.local_read(self.buf, &mut got).unwrap();
                        assert_eq!(&got, expect, "read payload mismatch");
                        *self.checked.borrow_mut() += 1;
                    }
                    Op::FetchAdd { .. } | Op::Swap { .. } => {
                        let mut got = vec![0u8; 8];
                        api.local_read(self.buf, &mut got).unwrap();
                        assert_eq!(&got, expect, "atomic old-value mismatch");
                        *self.checked.borrow_mut() += 1;
                    }
                    Op::Write { .. } => {}
                }
                self.cursor += 1;
            }
            other => panic!("unexpected wake {other:?}"),
        }
        if self.cursor == self.ops.len() {
            return Step::Done;
        }
        let (op, _) = self.ops[self.cursor];
        match op {
            Op::Write { at, lines, fill } => {
                let data = vec![fill; lines as usize * 64];
                api.local_write(self.buf, &data).unwrap();
                api.post_write(
                    self.qp,
                    self.peer,
                    DEFAULT_CTX,
                    at * 64,
                    self.buf,
                    data.len() as u64,
                )
                .unwrap();
            }
            Op::Read { at, lines } => {
                api.post_read(
                    self.qp,
                    self.peer,
                    DEFAULT_CTX,
                    at * 64,
                    self.buf,
                    lines as u64 * 64,
                )
                .unwrap();
            }
            Op::FetchAdd { at, delta } => {
                api.post_fetch_add(
                    self.qp,
                    self.peer,
                    DEFAULT_CTX,
                    at * 64,
                    self.buf,
                    delta as u64,
                )
                .unwrap();
            }
            Op::Swap { at, to } => {
                // Expected value embedded by the generator as operand1 via
                // comp_swap: the shadow's current word.
                let (_, expect) = &self.ops[self.cursor];
                let expected = u64::from_le_bytes(expect[0..8].try_into().unwrap());
                api.post_comp_swap(
                    self.qp,
                    self.peer,
                    DEFAULT_CTX,
                    at * 64,
                    self.buf,
                    expected,
                    to,
                )
                .unwrap();
            }
        }
        Step::WaitCq(self.qp)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_op_streams_match_a_shadow_model(ops in vec(arb_op(), 1..40)) {
        let segment = 64u64 * 64; // 64 lines
        // Shadow of the peer's segment.
        let mut shadow = vec![0u8; segment as usize];
        let mut script: Vec<(Op, Vec<u8>)> = Vec::new();
        let mut expected_checks = 0u32;
        for &op in &ops {
            match op {
                Op::Write { at, lines, fill } => {
                    let lo = (at * 64) as usize;
                    let hi = lo + lines as usize * 64;
                    shadow[lo..hi].fill(fill);
                    script.push((op, Vec::new()));
                }
                Op::Read { at, lines } => {
                    let lo = (at * 64) as usize;
                    let hi = lo + lines as usize * 64;
                    script.push((op, shadow[lo..hi].to_vec()));
                    expected_checks += 1;
                }
                Op::FetchAdd { at, delta } => {
                    let lo = (at * 64) as usize;
                    let old = u64::from_le_bytes(shadow[lo..lo + 8].try_into().unwrap());
                    script.push((op, old.to_le_bytes().to_vec()));
                    shadow[lo..lo + 8].copy_from_slice(&old.wrapping_add(delta as u64).to_le_bytes());
                    expected_checks += 1;
                }
                Op::Swap { at, to } => {
                    let lo = (at * 64) as usize;
                    let old = u64::from_le_bytes(shadow[lo..lo + 8].try_into().unwrap());
                    script.push((op, old.to_le_bytes().to_vec()));
                    shadow[lo..lo + 8].copy_from_slice(&to.to_le_bytes());
                    expected_checks += 1;
                }
            }
        }

        let mut system = SystemBuilder::simulated_hardware(2).segment_len(segment).build();
        let qp = system.create_qp(NodeId(0), 0);
        let checked = Rc::new(RefCell::new(0u32));
        system.spawn(
            NodeId(0),
            0,
            Box::new(Scripted {
                qp,
                peer: NodeId(1),
                ops: script,
                cursor: 0,
                buf: VAddr::new(0),
                checked: checked.clone(),
            }),
        );
        system.run();
        prop_assert_eq!(*checked.borrow(), expected_checks);

        // Final memory image matches the shadow byte-for-byte.
        let mut image = vec![0u8; segment as usize];
        system.read_ctx(NodeId(1), 0, &mut image);
        prop_assert_eq!(image, shadow);
    }
}
