//! Integration tests for the software libraries and applications across
//! larger configurations: many-to-one messaging, barrier + data mixing,
//! and cross-variant PageRank agreement on a torus fabric.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma::apps::graph::{Graph, GraphConfig};
use sonuma::apps::kvstore::{self, KvStoreConfig};
use sonuma::apps::pagerank::{self, PagerankConfig, Variant};
use sonuma::core::{
    drain_completions, AppProcess, Messenger, MsgConfig, MsgError, NodeApi, NodeId, RecvPoll, Step,
    SystemBuilder, Wake,
};

type Shared<T> = Rc<RefCell<T>>;

fn pattern(sender: usize, k: u32, size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| (sender * 97 + k as usize * 31 + i * 7) as u8)
        .collect()
}

/// One of several senders funneling messages into node 0.
struct FanInSender {
    m: Messenger,
    count: u32,
    size: usize,
    sent: u32,
}

impl AppProcess for FanInSender {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        let to = NodeId(0);
        loop {
            if self.sent == self.count {
                if !self.m.all_sent() {
                    let (addr, len) = self.m.credit_watch(to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                return Step::Done;
            }
            let me = api.node_id().index();
            let data = pattern(me, self.sent, self.size);
            match self.m.try_send(api, to, &data) {
                Ok(()) => self.sent += 1,
                Err(MsgError::NoCredit) => {
                    let (addr, len) = self.m.credit_watch(to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                Err(MsgError::Backpressure) => return Step::WaitCq(self.m.qp()),
                Err(e) => panic!("{e}"),
            }
        }
    }
}

/// The sink: drains every sender, verifying per-channel ordering and
/// contents.
struct FanInSink {
    m: Messenger,
    senders: usize,
    per_sender: u32,
    size: usize,
    got: Vec<u32>,
    total: Shared<u32>,
}

impl AppProcess for FanInSink {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            let mut progressed = false;
            let mut pending = false;
            for s in 1..=self.senders {
                match self.m.try_recv(api, NodeId(s as u16)).unwrap() {
                    RecvPoll::Message(v) => {
                        let k = self.got[s - 1];
                        assert_eq!(v, pattern(s, k, self.size), "sender {s} message {k}");
                        self.got[s - 1] += 1;
                        *self.total.borrow_mut() += 1;
                        progressed = true;
                    }
                    RecvPoll::Pending => pending = true,
                    RecvPoll::Empty => self.m.flush_credits(api, NodeId(s as u16)),
                }
            }
            if self.got.iter().all(|&g| g == self.per_sender) {
                return Step::Done;
            }
            if !progressed {
                if pending {
                    return Step::WaitCq(self.m.qp());
                }
                let (addr, len) = self.m.recv_watch_all();
                return Step::WaitCqOrMemory {
                    qp: self.m.qp(),
                    addr,
                    len,
                };
            }
        }
    }
}

/// Several nodes stream into one receiver; per-channel FIFO order and
/// payload integrity must survive the interleaving (push and pull mixed:
/// sizes straddle the threshold).
#[test]
fn many_to_one_messaging_preserves_channel_order() {
    let senders = 3usize;
    let per_sender = 25u32;
    let size = 300usize; // above the 256 B threshold: pull path
    let mut system = SystemBuilder::simulated_hardware(senders + 1)
        .segment_len(8 << 20)
        .qp_entries(128)
        .build();
    let cfg = MsgConfig::hardware();
    let total: Shared<u32> = Rc::new(RefCell::new(0));

    let qp0 = system.create_qp(NodeId(0), 0);
    system.spawn(
        NodeId(0),
        0,
        Box::new(FanInSink {
            m: Messenger::new(cfg, qp0, NodeId(0), senders + 1, 0),
            senders,
            per_sender,
            size,
            got: vec![0; senders],
            total: total.clone(),
        }),
    );
    for s in 1..=senders {
        let qp = system.create_qp(NodeId(s as u16), 0);
        system.spawn(
            NodeId(s as u16),
            0,
            Box::new(FanInSender {
                m: Messenger::new(cfg, qp, NodeId(s as u16), senders + 1, 0),
                count: per_sender,
                size,
                sent: 0,
            }),
        );
    }
    system.run();
    assert_eq!(*total.borrow(), senders as u32 * per_sender);
}

/// All three PageRank variants agree with the serial reference over a
/// torus fabric (exercising multi-hop routing under the application).
#[test]
fn pagerank_variants_agree_on_reference() {
    let graph = Rc::new(Graph::rmat(&GraphConfig::social(512, 3)));
    let cfg = PagerankConfig {
        supersteps: 3,
        ..Default::default()
    };
    let reference = pagerank::reference_ranks(&graph, cfg.supersteps);
    for variant in [Variant::Shm, Variant::Bulk, Variant::FineGrain] {
        let r = pagerank::run(variant, 4, &graph, &cfg);
        for (v, (a, b)) in r.ranks.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{variant}: rank {v} diverged ({a} vs {b})"
            );
        }
    }
}

/// The KV store stays consistent under a heavier mixed workload.
#[test]
fn kvstore_consistency_under_load() {
    let cfg = KvStoreConfig {
        buckets: 4096,
        preload: 512,
        gets_per_client: 120,
        puts_per_client: 12,
        seed: 7,
    };
    let reports = kvstore::run(4, &cfg);
    assert_eq!(reports.len(), 4);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.hits + r.misses, 120, "client {i}");
        assert_eq!(r.put_acks, 12, "client {i}");
        assert_eq!(r.corrupt, 0, "client {i} observed torn values");
        assert!(r.hits > r.misses, "client {i}: ~75% of keys are present");
    }
}
