//! Cross-crate integration tests: the full system exercised through the
//! facade crate's public API, on configurations the per-crate tests don't
//! cover (torus fabrics, many nodes, mixed op streams).

use std::cell::RefCell;
use std::rc::Rc;

use sonuma::core::{
    AppProcess, MachineConfig, NodeApi, NodeId, Status, Step, SystemBuilder, VAddr, Wake,
    DEFAULT_CTX,
};
use sonuma::fabric::FabricConfig;

type Shared<T> = Rc<RefCell<T>>;

/// Reads a pattern from every peer in turn and checks the payloads.
struct RingReader {
    qp: sonuma::core::QpId,
    nodes: usize,
    next_peer: usize,
    buf: VAddr,
    verified: Shared<u32>,
}

impl AppProcess for RingReader {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.buf = api.heap_alloc(64).unwrap();
        }
        if let Wake::CqReady(comps) = &why {
            assert_eq!(comps.len(), 1);
            assert_eq!(comps[0].status, Status::Ok);
            let got = api.local_load_u64(self.buf).unwrap();
            assert_eq!(
                got,
                0xBEEF_0000 + self.next_peer as u64,
                "payload from peer"
            );
            *self.verified.borrow_mut() += 1;
            self.next_peer += 1;
        }
        let me = api.node_id().index();
        while self.next_peer < self.nodes {
            if self.next_peer == me {
                self.next_peer += 1;
                continue;
            }
            api.post_read(
                self.qp,
                NodeId(self.next_peer as u16),
                DEFAULT_CTX,
                0,
                self.buf,
                64,
            )
            .unwrap();
            return Step::WaitCq(self.qp);
        }
        Step::Done
    }
}

/// Every node reads every other node's segment over a 4x4 torus.
#[test]
fn all_to_all_reads_over_a_torus() {
    let nodes = 16usize;
    let mut config = MachineConfig::simulated_hardware(nodes);
    config.fabric = FabricConfig::torus2d(4, 4);
    let mut system = SystemBuilder::from_config(config)
        .segment_len(1 << 20)
        .build();

    for n in 0..nodes {
        system.write_ctx(
            NodeId(n as u16),
            0,
            &(0xBEEF_0000u64 + n as u64).to_le_bytes(),
        );
    }
    let verified: Shared<u32> = Rc::new(RefCell::new(0));
    for n in 0..nodes {
        let qp = system.create_qp(NodeId(n as u16), 0);
        system.spawn(
            NodeId(n as u16),
            0,
            Box::new(RingReader {
                qp,
                nodes,
                next_peer: 0,
                buf: VAddr::new(0),
                verified: verified.clone(),
            }),
        );
    }
    system.run();
    assert_eq!(*verified.borrow(), (nodes * (nodes - 1)) as u32);
    assert!(system.cluster.fabric().packets_sent() > 0);
}

/// Concurrent remote fetch-and-adds from every node against one counter
/// must lose no increments (global atomicity within the destination's
/// coherence, §7.4).
struct Incrementer {
    qp: sonuma::core::QpId,
    target: NodeId,
    remaining: u32,
    buf: VAddr,
}

impl AppProcess for Incrementer {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.buf = api.heap_alloc(64).unwrap();
        }
        if let Wake::CqReady(c) = &why {
            assert!(c.iter().all(|c| c.status.is_ok()));
            self.remaining -= c.len() as u32;
        }
        if self.remaining == 0 {
            return Step::Done;
        }
        // Keep a few in flight to interleave across nodes.
        while api.outstanding(self.qp) < 4 {
            if api
                .post_fetch_add(self.qp, self.target, DEFAULT_CTX, 128, self.buf, 1)
                .is_err()
            {
                break;
            }
        }
        Step::WaitCq(self.qp)
    }
}

#[test]
fn concurrent_atomics_lose_no_updates() {
    let nodes = 5usize;
    let per_node = 40u32;
    let mut system = SystemBuilder::simulated_hardware(nodes)
        .segment_len(1 << 20)
        .build();
    system.write_ctx(NodeId(0), 128, &0u64.to_le_bytes());
    for n in 1..nodes {
        let qp = system.create_qp(NodeId(n as u16), 0);
        system.spawn(
            NodeId(n as u16),
            0,
            Box::new(Incrementer {
                qp,
                target: NodeId(0),
                remaining: per_node,
                buf: VAddr::new(0),
            }),
        );
    }
    system.run();
    let mut ctr = [0u8; 8];
    system.read_ctx(NodeId(0), 128, &mut ctr);
    assert_eq!(
        u64::from_le_bytes(ctr),
        (nodes as u64 - 1) * per_node as u64,
        "every fetch-and-add must be applied exactly once"
    );
}

/// Every class of protocol error surfaces as a CQ status, not a crash.
struct ErrorProber {
    qp: sonuma::core::QpId,
    buf: VAddr,
    statuses: Shared<Vec<Status>>,
    posted: bool,
}

impl AppProcess for ErrorProber {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.buf = api.heap_alloc(4096).unwrap();
        }
        if let Wake::CqReady(comps) = &why {
            for c in comps {
                self.statuses.borrow_mut().push(c.status);
            }
        }
        if !self.posted {
            // Out of segment bounds: offset beyond the 1 MiB segment.
            api.post_read(self.qp, NodeId(1), DEFAULT_CTX, 1 << 21, self.buf, 64)
                .unwrap();
            // Straddling the end of the segment.
            api.post_read(
                self.qp,
                NodeId(1),
                DEFAULT_CTX,
                (1 << 20) - 64,
                self.buf,
                128,
            )
            .unwrap();
            // A valid one for contrast.
            api.post_read(self.qp, NodeId(1), DEFAULT_CTX, 0, self.buf, 64)
                .unwrap();
            self.posted = true;
        }
        if self.statuses.borrow().len() == 3 {
            return Step::Done;
        }
        Step::WaitCq(self.qp)
    }
}

#[test]
fn protocol_errors_surface_in_the_cq() {
    let mut system = SystemBuilder::simulated_hardware(2)
        .segment_len(1 << 20)
        .build();
    let qp = system.create_qp(NodeId(0), 0);
    let statuses: Shared<Vec<Status>> = Rc::new(RefCell::new(Vec::new()));
    system.spawn(
        NodeId(0),
        0,
        Box::new(ErrorProber {
            qp,
            buf: VAddr::new(0),
            statuses: statuses.clone(),
            posted: false,
        }),
    );
    system.run();
    let got = statuses.borrow();
    assert_eq!(got.len(), 3);
    assert_eq!(
        got.iter().filter(|s| **s == Status::OutOfBounds).count(),
        2,
        "both out-of-bounds probes must error: {got:?}"
    );
    assert_eq!(got.iter().filter(|s| s.is_ok()).count(), 1);
}

/// The whole stack is deterministic: two identical multi-node runs produce
/// identical event counts, times, and fabric traffic.
#[test]
fn full_system_determinism() {
    let run = || {
        let nodes = 4usize;
        let mut system = SystemBuilder::simulated_hardware(nodes)
            .segment_len(1 << 20)
            .build();
        for n in 0..nodes {
            system.write_ctx(
                NodeId(n as u16),
                0,
                &(0xBEEF_0000u64 + n as u64).to_le_bytes(),
            );
        }
        let verified: Shared<u32> = Rc::new(RefCell::new(0));
        for n in 0..nodes {
            let qp = system.create_qp(NodeId(n as u16), 0);
            system.spawn(
                NodeId(n as u16),
                0,
                Box::new(RingReader {
                    qp,
                    nodes,
                    next_peer: 0,
                    buf: VAddr::new(0),
                    verified: verified.clone(),
                }),
            );
        }
        system.run();
        let ok = *verified.borrow();
        (
            system.now(),
            system.engine.events_executed(),
            system.cluster.fabric().packets_sent(),
            system.cluster.fabric().bytes_sent(),
            ok,
        )
    };
    assert_eq!(run(), run());
}

/// The dev-platform preset runs the same binary protocol, only slower —
/// both platforms move identical bytes.
#[test]
fn platforms_agree_functionally() {
    let run = |dev: bool| {
        let mut system = if dev {
            SystemBuilder::dev_platform(2)
        } else {
            SystemBuilder::simulated_hardware(2)
        }
        .segment_len(1 << 20)
        .build();
        system.write_ctx(NodeId(1), 0, &(0xBEEF_0001u64).to_le_bytes());
        let verified: Shared<u32> = Rc::new(RefCell::new(0));
        let qp = system.create_qp(NodeId(0), 0);
        system.spawn(
            NodeId(0),
            0,
            Box::new(RingReader {
                qp,
                nodes: 2,
                next_peer: 0,
                buf: VAddr::new(0),
                verified: verified.clone(),
            }),
        );
        system.run();
        let ok = *verified.borrow();
        (ok, system.now())
    };
    let (hw_ok, hw_time) = run(false);
    let (dev_ok, dev_time) = run(true);
    assert_eq!(hw_ok, 1);
    assert_eq!(dev_ok, 1);
    // A single cold operation blunts the steady-state 5x gap; even so the
    // emulated platform must be clearly slower.
    assert!(
        dev_time > hw_time * 2,
        "dev platform must be several times slower: {dev_time} vs {hw_time}"
    );
}
