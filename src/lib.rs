//! # soNUMA-rs
//!
//! A from-scratch Rust reproduction of **Scale-Out NUMA** (Novakovic et al.,
//! ASPLOS 2014): the remote memory controller (RMC), its programming model,
//! and the stateless request/reply protocol layered on a NUMA memory fabric,
//! together with the full simulation substrate, baselines, applications and
//! benchmark harness used in the paper's evaluation.
//!
//! This facade crate re-exports every subsystem under one namespace. See
//! `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use sonuma_apps as apps;
pub use sonuma_baselines as baselines;
pub use sonuma_core as core;
pub use sonuma_fabric as fabric;
pub use sonuma_machine as machine;
pub use sonuma_memory as memory;
pub use sonuma_protocol as protocol;
pub use sonuma_rmc as rmc;
pub use sonuma_sim as sim;
