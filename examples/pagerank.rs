//! The paper's application study in miniature: PageRank over an R-MAT
//! graph in all three implementations (§7.5), with correctness checked
//! against a serial reference.
//!
//! ```text
//! cargo run --example pagerank --release
//! ```

use std::rc::Rc;

use sonuma::apps::graph::{Graph, GraphConfig, Partition};
use sonuma::apps::pagerank::{self, PagerankConfig, Variant};

fn main() {
    let vertices = 4096;
    let graph = Rc::new(Graph::rmat(&GraphConfig::social(vertices, 42)));
    let cfg = PagerankConfig {
        supersteps: 2,
        ..Default::default()
    };
    println!(
        "PageRank on an R-MAT graph: {} vertices, {} edges, max in-degree {}",
        graph.vertices(),
        graph.edges(),
        graph.max_in_degree()
    );
    let part = Partition::random(vertices, 4, cfg.partition_seed);
    println!(
        "4-way random partition cuts {} of {} edges\n",
        part.cut_edges(&graph),
        graph.edges()
    );

    let reference = pagerank::reference_ranks(&graph, cfg.supersteps);
    let baseline = pagerank::run(Variant::Shm, 1, &graph, &cfg);
    println!(
        "{:<22} {:>6} workers  {:>12}  speedup {:>5.2}",
        "SHM(pthreads)",
        1,
        format!("{}", baseline.total_time),
        1.0
    );

    for (variant, workers) in [
        (Variant::Shm, 4),
        (Variant::Bulk, 4),
        (Variant::FineGrain, 4),
    ] {
        let r = pagerank::run(variant, workers, &graph, &cfg);
        let max_err = r
            .ranks
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "{variant} diverged: {max_err}");
        println!(
            "{:<22} {:>6} workers  {:>12}  speedup {:>5.2}  remote ops {:>8}",
            variant.to_string(),
            workers,
            format!("{}", r.total_time),
            baseline.total_time.as_ns_f64() / r.total_time.as_ns_f64(),
            r.remote_ops
        );
    }
    println!("\nall variants match the serial reference to < 1e-9");
}
