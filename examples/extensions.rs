//! The paper's §8 extensions in action: remote interrupts (node-to-node
//! notification without polling) and an all-reduce collective built from
//! one-sided writes.
//!
//! ```text
//! cargo run --example extensions --release
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use sonuma::core::{
    drain_completions, AllReduce, AppProcess, NodeApi, NodeId, SimTime, Step, SystemBuilder, Wake,
    DEFAULT_CTX,
};

/// Coordinator: interrupts every worker to start, then joins the
/// all-reduce and prints the global sum.
struct Coordinator {
    qp: sonuma::core::QpId,
    a: AllReduce,
    nodes: usize,
    kicked: bool,
    t0: SimTime,
}

impl AppProcess for Coordinator {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.a.init(api).unwrap();
            self.t0 = api.now();
        }
        let _ = drain_completions(api, &why, self.qp);
        if !self.kicked {
            // Wake every worker by interrupt — no polling anywhere.
            for n in 1..self.nodes {
                api.post_interrupt(self.qp, NodeId(n as u16), DEFAULT_CTX, 0xC0FFEE)
                    .unwrap();
            }
            self.kicked = true;
            self.a.start(api, 0).unwrap(); // coordinator contributes 0
        }
        match self.a.poll(api).unwrap() {
            Some(sum) => {
                println!(
                    "all-reduce over {} nodes -> sum = {} in {} (kicked off by remote interrupts)",
                    self.nodes,
                    sum,
                    api.now() - self.t0
                );
                Step::Done
            }
            None => {
                let (addr, len) = self.a.watch();
                Step::WaitCqOrMemory {
                    qp: self.qp,
                    addr,
                    len,
                }
            }
        }
    }
}

/// Worker: sleeps until interrupted, then contributes `100 * node_id`.
struct Worker {
    qp: sonuma::core::QpId,
    a: AllReduce,
    woken: Rc<RefCell<u32>>,
}

impl AppProcess for Worker {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                self.a.init(api).unwrap();
                // Park on a dummy range: only the interrupt can wake us.
                let dummy = api.ctx_base(DEFAULT_CTX);
                Step::WaitMemory {
                    addr: dummy,
                    len: 64,
                }
            }
            Wake::Interrupt { from, payload } => {
                println!(
                    "node {} interrupted by {} (payload {payload:#x}) at {}",
                    api.node_id(),
                    from,
                    api.now()
                );
                *self.woken.borrow_mut() += 1;
                self.a.start(api, 100 * api.node_id().0 as u64).unwrap();
                let (addr, len) = self.a.watch();
                Step::WaitCqOrMemory {
                    qp: self.qp,
                    addr,
                    len,
                }
            }
            _ => {
                let _ = drain_completions(api, &why, self.qp);
                match self.a.poll(api).unwrap() {
                    Some(_) => Step::Done,
                    None => {
                        let (addr, len) = self.a.watch();
                        Step::WaitCqOrMemory {
                            qp: self.qp,
                            addr,
                            len,
                        }
                    }
                }
            }
        }
    }
}

fn main() {
    let nodes = 4usize;
    let mut system = SystemBuilder::simulated_hardware(nodes)
        .segment_len(1 << 20)
        .build();
    let woken = Rc::new(RefCell::new(0u32));
    for n in 0..nodes {
        let node = NodeId(n as u16);
        let qp = system.create_qp(node, 0);
        if n == 0 {
            system.spawn(
                node,
                0,
                Box::new(Coordinator {
                    qp,
                    a: AllReduce::new(qp, node, nodes, 0),
                    nodes,
                    kicked: false,
                    t0: SimTime::ZERO,
                }),
            );
        } else {
            system.cluster.set_interrupt_handler(node, 0);
            system.spawn(
                node,
                0,
                Box::new(Worker {
                    qp,
                    a: AllReduce::new(qp, node, nodes, 0),
                    woken: woken.clone(),
                }),
            );
        }
    }
    system.run();
    assert_eq!(*woken.borrow(), (nodes - 1) as u32);
    // 100*1 + 100*2 + 100*3 = 600.
    println!("\nworkers woken by interrupt: {}", woken.borrow());
}
