//! The §5.3 unsolicited-communication library: ping-pong latency and a
//! one-way stream, showing the push/pull threshold at work.
//!
//! ```text
//! cargo run --example messaging --release
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use sonuma::core::{
    drain_completions, AppProcess, Messenger, MsgConfig, MsgError, NodeApi, NodeId, RecvPoll,
    SimTime, Step, SystemBuilder, Wake,
};

/// Ping side: sends a message, waits for the echo, records the RTT.
struct Ping {
    m: Messenger,
    size: usize,
    rounds: u32,
    current: u32,
    sent: bool,
    t0: SimTime,
    rtts: Rc<RefCell<Vec<SimTime>>>,
}

impl AppProcess for Ping {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        let peer = NodeId(1);
        loop {
            if self.current == self.rounds {
                return Step::Done;
            }
            if !self.sent {
                let msg = vec![self.current as u8; self.size];
                self.t0 = api.now();
                match self.m.try_send(api, peer, &msg) {
                    Ok(()) => self.sent = true,
                    Err(_) => return Step::WaitCq(self.m.qp()),
                }
            }
            match self.m.try_recv(api, peer).unwrap() {
                RecvPoll::Message(echo) => {
                    assert_eq!(echo.len(), self.size);
                    self.rtts.borrow_mut().push(api.now() - self.t0);
                    self.current += 1;
                    self.sent = false;
                }
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, peer);
                    let (addr, len) = if self.m.all_sent() {
                        self.m.recv_watch(peer)
                    } else {
                        self.m.credit_watch(peer)
                    };
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

/// Pong side: echoes everything back.
struct Pong {
    m: Messenger,
    rounds: u32,
    echoed: u32,
    held: Option<Vec<u8>>,
}

impl AppProcess for Pong {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        let peer = NodeId(0);
        loop {
            if self.echoed == self.rounds && self.held.is_none() && self.m.all_sent() {
                return Step::Done;
            }
            if let Some(msg) = self.held.take() {
                match self.m.try_send(api, peer, &msg) {
                    Ok(()) => {
                        self.echoed += 1;
                        continue;
                    }
                    Err(MsgError::NoCredit) | Err(MsgError::Backpressure) => {
                        self.held = Some(msg);
                        return Step::WaitCq(self.m.qp());
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            match self.m.try_recv(api, peer).unwrap() {
                RecvPoll::Message(msg) => self.held = Some(msg),
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, peer);
                    let (addr, len) = if self.m.all_sent() {
                        self.m.recv_watch(peer)
                    } else {
                        self.m.credit_watch(peer)
                    };
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

fn pingpong(size: usize) -> SimTime {
    let mut system = SystemBuilder::simulated_hardware(2)
        .segment_len(4 << 20)
        .build();
    let cfg = MsgConfig::hardware(); // 256 B push/pull threshold
    let qp0 = system.create_qp(NodeId(0), 0);
    let qp1 = system.create_qp(NodeId(1), 0);
    let rtts = Rc::new(RefCell::new(Vec::new()));
    system.spawn(
        NodeId(0),
        0,
        Box::new(Ping {
            m: Messenger::new(cfg, qp0, NodeId(0), 2, 0),
            size,
            rounds: 10,
            current: 0,
            sent: false,
            t0: SimTime::ZERO,
            rtts: rtts.clone(),
        }),
    );
    system.spawn(
        NodeId(1),
        0,
        Box::new(Pong {
            m: Messenger::new(cfg, qp1, NodeId(1), 2, 0),
            rounds: 10,
            echoed: 0,
            held: None,
        }),
    );
    system.run();
    let v = rtts.borrow();
    // Steady state: last round trip, halved (half-duplex, as Netpipe
    // reports).
    *v.last().unwrap() / 2
}

fn main() {
    println!("send/receive over one-sided operations (threshold 256 B):\n");
    for size in [16usize, 64, 256, 1024, 4096] {
        let mechanism = if size <= 256 { "push" } else { "pull" };
        let half = pingpong(size);
        println!("  {size:>5} B message  ({mechanism})  half-duplex latency {half}");
    }
    println!("\npaper: 340 ns minimum half-duplex latency on the simulated hardware (Fig. 8a)");
}
