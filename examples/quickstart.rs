//! Quickstart: a two-node soNUMA system doing one-sided remote reads,
//! writes, and atomics.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This walks the full paper pipeline: the application posts a work-queue
//! entry; the Request Generation Pipeline picks it up and injects packets
//! into the NUMA fabric; the destination's Remote Request Processing
//! Pipeline services them statelessly against its Context Table; and the
//! Request Completion Pipeline delivers a completion-queue entry back to
//! the application — all at simulated-hardware timing (Table 1).

use std::cell::RefCell;
use std::rc::Rc;

use sonuma::core::{
    AppProcess, NodeApi, NodeId, SimTime, Step, SystemBuilder, VAddr, Wake, DEFAULT_CTX,
};

/// Runs a read, a write, and a fetch-and-add against node 1, printing each
/// operation's end-to-end latency.
struct Quickstart {
    qp: sonuma::core::QpId,
    buf: VAddr,
    phase: u8,
    posted_at: SimTime,
    log: Rc<RefCell<Vec<(String, SimTime)>>>,
}

impl AppProcess for Quickstart {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        let peer = NodeId(1);
        match (self.phase, why) {
            (0, Wake::Start) => {
                self.buf = api.heap_alloc(4096).unwrap();
                // Remote read: copy 64 bytes of node 1's segment here.
                self.posted_at = api.now();
                api.post_read(self.qp, peer, DEFAULT_CTX, 0, self.buf, 64)
                    .unwrap();
                self.phase = 1;
                Step::WaitCq(self.qp)
            }
            (1, Wake::CqReady(c)) => {
                assert!(c[0].status.is_ok());
                self.log
                    .borrow_mut()
                    .push(("remote read  (64 B)".into(), api.now() - self.posted_at));
                let mut greeting = [0u8; 13];
                api.local_read(self.buf, &mut greeting).unwrap();
                assert_eq!(&greeting, b"hello, rack!\0");

                // Remote write: publish 128 bytes into node 1's segment.
                api.local_write(self.buf, &[0x42u8; 128]).unwrap();
                self.posted_at = api.now();
                api.post_write(self.qp, peer, DEFAULT_CTX, 4096, self.buf, 128)
                    .unwrap();
                self.phase = 2;
                Step::WaitCq(self.qp)
            }
            (2, Wake::CqReady(c)) => {
                assert!(c[0].status.is_ok());
                self.log
                    .borrow_mut()
                    .push(("remote write (128 B)".into(), api.now() - self.posted_at));

                // Remote fetch-and-add on a counter in node 1's segment.
                self.posted_at = api.now();
                api.post_fetch_add(self.qp, peer, DEFAULT_CTX, 8192, self.buf, 7)
                    .unwrap();
                self.phase = 3;
                Step::WaitCq(self.qp)
            }
            (3, Wake::CqReady(c)) => {
                assert!(c[0].status.is_ok());
                self.log
                    .borrow_mut()
                    .push(("fetch-and-add (8 B)".into(), api.now() - self.posted_at));
                let old = api.local_load_u64(self.buf).unwrap();
                println!("  fetch-and-add observed the counter at {old}");
                Step::Done
            }
            (p, w) => panic!("unexpected ({p}, {w:?})"),
        }
    }
}

fn main() {
    let mut system = SystemBuilder::simulated_hardware(2)
        .segment_len(1 << 20)
        .build();

    // Seed node 1's globally readable segment.
    system.write_ctx(NodeId(1), 0, b"hello, rack!\0");
    system.write_ctx(NodeId(1), 8192, &100u64.to_le_bytes());

    let qp = system.create_qp(NodeId(0), 0);
    let log = Rc::new(RefCell::new(Vec::new()));
    system.spawn(
        NodeId(0),
        0,
        Box::new(Quickstart {
            qp,
            buf: VAddr::new(0),
            phase: 0,
            posted_at: SimTime::ZERO,
            log: log.clone(),
        }),
    );
    system.run();

    println!("soNUMA quickstart (2 nodes, Table 1 hardware):");
    for (op, latency) in log.borrow().iter() {
        println!("  {op:<22} completed in {latency}");
    }

    // The remote write and atomic really landed on node 1.
    let mut back = [0u8; 128];
    system.read_ctx(NodeId(1), 4096, &mut back);
    assert_eq!(back, [0x42u8; 128]);
    let mut ctr = [0u8; 8];
    system.read_ctx(NodeId(1), 8192, &mut ctr);
    assert_eq!(u64::from_le_bytes(ctr), 107);
    println!("  node 1's memory verified: write landed, counter = 107");
}
