//! A Pilaf-style key-value store over soNUMA: GETs are one-sided remote
//! reads (no server CPU), PUTs go through the messaging library (§2.1, §8).
//!
//! ```text
//! cargo run --example kvstore --release
//! ```

use sonuma::apps::kvstore::{self, KvStoreConfig};

fn main() {
    let cfg = KvStoreConfig {
        buckets: 8192,
        preload: 2048,
        gets_per_client: 300,
        puts_per_client: 30,
        seed: 0xFEED,
    };
    println!(
        "one-sided KV store: 1 server + 3 clients, {} preloaded keys, {} buckets",
        cfg.preload, cfg.buckets
    );

    let reports = kvstore::run(3, &cfg);
    for (i, r) in reports.iter().enumerate() {
        println!(
            "client {i}: {} hits / {} misses, mean GET {:.0} ns, {} PUT acks, {} corrupt",
            r.hits, r.misses, r.mean_get_ns, r.put_acks, r.corrupt
        );
        assert_eq!(r.corrupt, 0);
    }
    let mean: f64 = reports.iter().map(|r| r.mean_get_ns).sum::<f64>() / reports.len() as f64;
    println!(
        "\nmean one-sided GET latency: {:.0} ns — object access without touching the server CPU,\n\
         the regime the paper targets for key-value stores (RAMCloud/Pilaf, §2.1)",
        mean
    );
}
